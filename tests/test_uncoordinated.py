"""Tests for the uncoordinated baseline: it must exhibit exactly the
anomalies the paper demonstrates (Figures 10-15), and converge to the
correct configuration eventually."""

import pytest

from repro.apps import bandwidth_cap_app, firewall_app, learning_switch_app
from repro.baselines import UncoordinatedLogic
from repro.network import (
    CorrectLogic,
    SimNetwork,
    install_ping_responders,
    ping_outcomes,
    send_ping,
)

H1, H4 = 1, 4


def firewall_scenario(logic, n_pings=8, interval=0.4, start=1.0, seed=7):
    """H1 pings H4 repeatedly; success requires H4's replies to pass."""
    app = firewall_app()
    net = SimNetwork(app.topology, logic, seed=seed)
    install_ping_responders(net)
    pings = []
    for i in range(n_pings):
        at = start + i * interval
        send_ping(net, "H1", "H4", i + 1, at)
        pings.append(("H1", "H4", i + 1, at))
    net.run(until=start + n_pings * interval + 10.0)
    return ping_outcomes(net, pings)


class TestFirewallAnomaly:
    def test_correct_drops_nothing(self):
        app = firewall_app()
        outcomes = firewall_scenario(CorrectLogic(app.compiled))
        assert all(o.succeeded for o in outcomes)

    @pytest.mark.parametrize("delay", [0.0, 0.5, 2.0])
    def test_uncoordinated_always_drops_some(self, delay):
        """Figure 10: even at zero delay at least one reply is lost."""
        app = firewall_app()
        outcomes = firewall_scenario(
            UncoordinatedLogic(app.compiled, update_delay=delay)
        )
        dropped = sum(1 for o in outcomes if not o.succeeded)
        assert dropped >= 1

    def test_drops_grow_with_delay(self):
        app = firewall_app()

        def drops(delay):
            outcomes = firewall_scenario(
                UncoordinatedLogic(app.compiled, update_delay=delay)
            )
            return sum(1 for o in outcomes if not o.succeeded)

        assert drops(0.1) <= drops(2.5)

    def test_uncoordinated_converges_eventually(self):
        app = firewall_app()
        outcomes = firewall_scenario(
            UncoordinatedLogic(app.compiled, update_delay=0.5), n_pings=10
        )
        assert outcomes[-1].succeeded  # late pings succeed after the push


class TestLearningAnomaly:
    def run_scenario(self, logic, seed=5):
        """H4 pings H1 repeatedly; count deliveries to the bystander H2."""
        app = learning_switch_app()
        net = SimNetwork(app.topology, logic, seed=seed)
        install_ping_responders(net)
        for i in range(8):
            send_ping(net, "H4", "H1", i + 1, 0.5 + i * 0.4)
        net.run(until=15.0)
        return sum(
            1
            for d in net.deliveries
            if d.host == "H2" and d.frame.flow[:1] == ("ping",)
        )

    def test_correct_floods_once(self):
        """Figure 12(a): only the first request is flooded to H2."""
        app = learning_switch_app()
        assert self.run_scenario(CorrectLogic(app.compiled)) == 1

    def test_uncoordinated_keeps_flooding(self):
        """Figure 12(b): flooding continues during the update window."""
        app = learning_switch_app()
        floods = self.run_scenario(
            UncoordinatedLogic(app.compiled, update_delay=2.0)
        )
        assert floods > 1


class TestBandwidthCapAnomaly:
    def run_scenario(self, logic, cap):
        app = bandwidth_cap_app(cap)
        net = SimNetwork(app.topology, logic, seed=3)
        install_ping_responders(net)
        pings = []
        for i in range(cap + 12):
            at = 0.5 + i * 0.5
            send_ping(net, "H1", "H4", i + 1, at)
            pings.append(("H1", "H4", i + 1, at))
        net.run(until=40.0)
        return sum(1 for o in ping_outcomes(net, pings) if o.succeeded)

    def test_correct_enforces_cap_exactly(self):
        app = bandwidth_cap_app(10)
        assert self.run_scenario(CorrectLogic(app.compiled), 10) == 10

    def test_uncoordinated_overshoots(self):
        """Figure 14(b): the paper measured 15 successes against cap 10."""
        app = bandwidth_cap_app(10)
        successes = self.run_scenario(
            UncoordinatedLogic(app.compiled, update_delay=2.0), 10
        )
        assert successes > 10

    def test_overshoot_shrinks_with_delay(self):
        app = bandwidth_cap_app(5)
        fast = self.run_scenario(
            UncoordinatedLogic(app.compiled, update_delay=0.1), 5
        )
        slow = self.run_scenario(
            UncoordinatedLogic(app.compiled, update_delay=3.0), 5
        )
        assert fast <= slow


class TestControllerStateMachine:
    def test_ignores_unexpected_events(self):
        """Notifications that do not extend the controller's event-set are
        dropped (e.g. repeat occurrences past the end of a chain)."""
        app = firewall_app()
        logic = UncoordinatedLogic(app.compiled, update_delay=0.1)
        net = SimNetwork(app.topology, logic, seed=0)
        install_ping_responders(net)
        for i in range(4):
            send_ping(net, "H1", "H4", i + 1, 0.2 + 0.3 * i)
        net.run(until=10.0)
        assert len(logic.controller_events) == 1  # the single firewall event

    def test_update_completion_recorded(self):
        app = firewall_app()
        logic = UncoordinatedLogic(app.compiled, update_delay=0.2)
        net = SimNetwork(app.topology, logic, seed=0)
        install_ping_responders(net)
        send_ping(net, "H1", "H4", 1, 0.1)
        net.run(until=10.0)
        assert logic.update_completed_at is not None
        assert logic.update_completed_at >= 0.3  # notify + delay
