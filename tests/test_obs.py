"""Tests for the observability layer (:mod:`repro.obs`).

Covers the metrics registry and its Prometheus exposition shape, the
span tracer (including executor-worker parenting and the
report-reconciliation property), the Chrome-trace exporter + summary
tree, the instrumented pipeline/cache/simulator counters, the service
``/metrics`` endpoint and trace-ID round-trip, the CLI ``--trace`` /
``trace summarize`` path, and the byte-identity pin: instrumentation
must never change what the compiler produces.
"""

import json
import urllib.request
import warnings

import pytest

from repro.apps import bandwidth_cap_app, firewall_app, ring_app
from repro.cli import main as cli_main
from repro.network import CorrectLogic, FrameBatch, SimNetwork
from repro.obs import export, metrics, trace
from repro.pipeline import (
    ArtifactCache,
    ArtifactCacheWarning,
    CompileOptions,
    Pipeline,
)
from repro.service import ServiceClient, ServiceError, create_server, serve_in_thread
from repro.service.state import ServiceState

from seed_apps import APPS, guarded_bytes


@pytest.fixture(autouse=True)
def _no_leaked_obs_state():
    """Every test starts and ends with nothing installed process-wide."""
    assert metrics.active() is None, "a registry leaked into this test"
    assert trace.active() is None, "a tracer leaked into this test"
    yield
    metrics.uninstall()
    trace.uninstall()


def fresh_pipeline(app, options=None):
    return Pipeline(app.program, app.topology, app.initial_state, options)


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_inc_and_value(self):
        reg = metrics.MetricsRegistry()
        c = reg.counter("requests_total", "help", endpoint="compile")
        c.inc()
        c.inc(by=4)
        assert reg.value("requests_total", endpoint="compile") == 5
        # untouched series read as zero, not KeyError
        assert reg.value("requests_total", endpoint="nope") == 0

    def test_counter_rejects_negative(self):
        c = metrics.Counter()
        with pytest.raises(ValueError):
            c.inc(by=-1)

    def test_gauge_set_max_is_monotone(self):
        g = metrics.Gauge()
        g.set_max(3)
        g.set_max(1)
        assert g.value == 3
        g.set(0.5)
        assert g.value == 0.5

    def test_histogram_buckets_are_cumulative(self):
        h = metrics.Histogram(bounds=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        counts = dict(h.bucket_counts())
        assert counts[0.1] == 1
        assert counts[1.0] == 2
        assert counts[10.0] == 3
        assert counts[float("inf")] == 4
        assert h.count == 4
        assert h.sum == pytest.approx(55.55)

    def test_histogram_bounds_must_increase(self):
        with pytest.raises(ValueError):
            metrics.Histogram(bounds=(1.0, 1.0))

    def test_same_name_same_labels_is_same_object(self):
        reg = metrics.MetricsRegistry()
        a = reg.counter("x_total", "help", k="1")
        b = reg.counter("x_total", "help", k="1")
        assert a is b
        c = reg.counter("x_total", "help", k="2")
        assert c is not a

    def test_kind_conflict_raises(self):
        reg = metrics.MetricsRegistry()
        reg.counter("thing", "help")
        with pytest.raises(ValueError):
            reg.gauge("thing", "help")

    def test_install_is_exclusive_and_idempotent(self):
        reg = metrics.install()
        assert metrics.install() is reg  # idempotent for the same one
        with pytest.raises(RuntimeError):
            metrics.install(metrics.MetricsRegistry())
        metrics.uninstall()
        assert metrics.active() is None

    def test_helpers_are_noops_uninstalled(self):
        # Must not raise and must not create hidden state anywhere.
        metrics.inc("ghost_total")
        metrics.observe("ghost_seconds", 1.0)
        metrics.gauge_set("ghost", 2.0)
        with metrics.collecting() as reg:
            assert reg.value("ghost_total") == 0

    def test_count_health_mirrors_into_registry(self):
        health = {}
        with metrics.collecting() as reg:
            metrics.count_health(health, "executor.retries")
            metrics.count_health(health, "executor.retries")
        assert health == {"executor.retries": 2}
        assert reg.value(metrics.HEALTH_METRIC, counter="executor.retries") == 2
        # Uninstalled: the legacy dict still counts, nothing else does.
        metrics.count_health(health, "executor.retries")
        assert health["executor.retries"] == 3


# ---------------------------------------------------------------------------
# Prometheus text exposition — shape pin
# ---------------------------------------------------------------------------


class TestPrometheusExposition:
    def test_exact_shape(self):
        reg = metrics.MetricsRegistry()
        reg.counter("a_requests_total", "How many.", endpoint="compile").inc(by=2)
        reg.gauge("b_uptime_seconds", "Up.").set(1.5)
        h = reg.histogram("c_seconds", "Latency.", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = export.prometheus_text(reg)
        assert text == (
            "# HELP a_requests_total How many.\n"
            "# TYPE a_requests_total counter\n"
            'a_requests_total{endpoint="compile"} 2\n'
            "# HELP b_uptime_seconds Up.\n"
            "# TYPE b_uptime_seconds gauge\n"
            "b_uptime_seconds 1.5\n"
            "# HELP c_seconds Latency.\n"
            "# TYPE c_seconds histogram\n"
            'c_seconds_bucket{le="0.1"} 1\n'
            'c_seconds_bucket{le="1"} 2\n'
            'c_seconds_bucket{le="+Inf"} 2\n'
            "c_seconds_sum 0.55\n"
            "c_seconds_count 2\n"
        )

    def test_label_values_escaped(self):
        reg = metrics.MetricsRegistry()
        reg.counter("x_total", "h", path='a"b\\c').inc()
        text = export.prometheus_text(reg)
        assert 'x_total{path="a\\"b\\\\c"} 1' in text

    def test_no_registry_placeholder(self):
        assert export.prometheus_text(None).startswith("# no metrics registry")

    def test_collectors_sampled_at_scrape_time(self):
        reg = metrics.MetricsRegistry()
        box = {"n": 1}
        reg.register_collector(
            lambda: [("derived_total", "counter", {}, float(box["n"]), "h")]
        )
        assert "derived_total 1" in export.prometheus_text(reg)
        box["n"] = 7
        assert "derived_total 7" in export.prometheus_text(reg)


# ---------------------------------------------------------------------------
# Tracer: span tree on a real compile, reconciliation with report()
# ---------------------------------------------------------------------------


class TestTracing:
    def test_span_is_noop_uninstalled(self):
        with trace.span("anything") as s:
            s.set(k=1)  # must be accepted and discarded
        assert trace.current() is None
        assert trace.current_trace_id() is None

    def test_cap24_compile_span_tree(self):
        app = bandwidth_cap_app(24)
        with trace.recording() as tracer:
            with trace.span("build"):
                pipeline = fresh_pipeline(app, CompileOptions(backend="thread"))
                pipeline.compiled
        spans = tracer.finished()
        by_name = {}
        for s in spans:
            by_name.setdefault(s["name"], []).append(s)
        for required in ("ets", "ets.symbolic", "ets.instantiate", "nes", "compile"):
            assert required in by_name, f"missing span {required!r}"
        # one trace id across the whole build
        assert len({s["trace_id"] for s in spans}) == 1
        # stage substages parent under the stage
        ets_id = by_name["ets"][0]["span_id"]
        assert by_name["ets.symbolic"][0]["parent_id"] == ets_id
        assert by_name["ets.instantiate"][0]["parent_id"] == ets_id
        # per-configuration spans run on worker threads but parent under
        # the compile stage span (contextvars don't cross the pool —
        # the compiler attaches them explicitly)
        compile_span = by_name["compile"][0]
        workers = by_name["compile.configuration"]
        assert len(workers) == len(pipeline.compiled.states)
        assert all(w["parent_id"] == compile_span["span_id"] for w in workers)
        assert any(w["thread"] != compile_span["thread"] for w in workers)

    def test_span_durations_reconcile_with_report(self):
        app = bandwidth_cap_app(12)
        with trace.recording() as tracer:
            pipeline = fresh_pipeline(app)
            pipeline.compiled
        report = pipeline.report()
        stage_spans = {
            s["name"]: s["duration"]
            for s in tracer.finished()
            if s["name"] in ("ets", "nes", "compile")
        }
        for stage, seconds in report.stage_seconds:
            # the span wraps slightly more than the timed region inside
            # the stage; they must agree to within a loose absolute slop
            assert stage_spans[stage] == pytest.approx(seconds, abs=0.05)

    def test_tracer_drops_beyond_capacity(self):
        tracer = trace.Tracer(max_spans=2)
        with trace.recording(tracer):
            for _ in range(5):
                with trace.span("s"):
                    pass
        assert len(tracer.finished()) == 2
        assert tracer.dropped == 3

    def test_error_spans_are_flagged(self):
        with trace.recording() as tracer:
            with pytest.raises(RuntimeError):
                with trace.span("boom"):
                    raise RuntimeError("x")
        (s,) = tracer.finished()
        assert s["attrs"]["error"] == "RuntimeError"


# ---------------------------------------------------------------------------
# Chrome-trace export + summarize
# ---------------------------------------------------------------------------


class TestChromeTrace:
    def _traced_compile(self):
        with trace.recording() as tracer:
            fresh_pipeline(firewall_app()).compiled
        return tracer

    def test_export_is_schema_valid(self, tmp_path):
        tracer = self._traced_compile()
        path = tmp_path / "t.json"
        count = export.write_chrome_trace(str(path), tracer)
        doc = json.loads(path.read_text())
        assert export.validate_chrome_trace(doc) == []
        assert count == len(tracer.finished())
        assert doc["otherData"]["spans"] == count

    def test_validator_catches_breakage(self):
        assert export.validate_chrome_trace([]) != []
        assert export.validate_chrome_trace({"traceEvents": [{"ph": "X"}]}) != []
        bad_ts = {
            "traceEvents": [
                {"name": "s", "ph": "X", "pid": 1, "tid": 0, "ts": -1,
                 "dur": 1, "args": {"trace_id": "t"}}
            ]
        }
        assert any("non-negative" in p for p in export.validate_chrome_trace(bad_ts))

    def test_round_trip_preserves_summary(self, tmp_path):
        tracer = self._traced_compile()
        direct = export.summarize(tracer.finished())
        doc = export.chrome_trace(tracer)
        rebuilt = export.summarize(export.spans_from_chrome(doc))

        def names(tree):
            return [(n["name"], n["count"], names(n["children"])) for n in tree]

        assert names(rebuilt) == names(direct)

    def test_summary_tree_self_time(self):
        spans = [
            {"name": "root", "span_id": 1, "parent_id": None, "duration": 1.0},
            {"name": "child", "span_id": 2, "parent_id": 1, "duration": 0.25},
            {"name": "child", "span_id": 3, "parent_id": 1, "duration": 0.25},
        ]
        (root,) = export.summarize(spans)
        assert root["name"] == "root"
        assert root["self"] == pytest.approx(0.5)
        (child,) = root["children"]
        assert child["count"] == 2
        assert child["total"] == pytest.approx(0.5)
        text = export.format_summary([root])
        assert "root" in text and "child" in text


# ---------------------------------------------------------------------------
# Pipeline / cache counters
# ---------------------------------------------------------------------------


class TestPipelineMetrics:
    def test_cache_loads_and_stage_histograms(self, tmp_path):
        app = firewall_app()
        options = CompileOptions(cache_dir=tmp_path)
        with metrics.collecting() as reg:
            fresh_pipeline(app, options).compiled  # cold: miss + store
            fresh_pipeline(app, options).compiled  # warm: hit
        assert reg.value("repro_cache_loads_total", result="miss") == 1
        assert reg.value("repro_cache_loads_total", result="hit") == 1
        assert reg.value("repro_cache_stores_total", result="ok") == 1
        hist = reg.histogram(
            "repro_pipeline_stage_seconds", "", stage="compile"
        )
        # cold compile + warm load both observe the compile stage
        assert hist.count == 2

    def test_health_counters_mirror(self, tmp_path):
        app = firewall_app()
        options = CompileOptions(cache_dir=tmp_path)
        pipeline = fresh_pipeline(app, options)
        key = pipeline.artifact_key()
        ArtifactCache(tmp_path).path(key).write_bytes(b"garbage")
        with metrics.collecting() as reg:
            with pytest.warns(ArtifactCacheWarning, match="corrupt"):
                pipeline.compiled
        assert reg.value(metrics.HEALTH_METRIC, counter="cache.load_corrupt") == 1
        assert pipeline.report().health["cache.load_corrupt"] == 1

    def test_cache_warning_counter_outlives_one_shot_warning(self, tmp_path):
        # Satellite: the warning fires once per cache, the counter keeps
        # counting after it is suppressed.
        cache = ArtifactCache(tmp_path)
        with metrics.collecting() as reg:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                for key in ("k1", "k2", "k3"):
                    cache.path(key).write_bytes(b"garbage")
                    assert cache.load(key) is None
        warned = [w for w in caught if issubclass(w.category, ArtifactCacheWarning)]
        assert len(warned) == 1  # one-shot emission preserved
        assert reg.value("repro_cache_warnings_total", category="corrupt") == 3


# ---------------------------------------------------------------------------
# Simulator counters
# ---------------------------------------------------------------------------


class TestSimulatorMetrics:
    def _stream(self, frames=200):
        app = ring_app(2)
        from repro.apps.base import HOSTS

        logic = CorrectLogic(app.compiled)
        net = SimNetwork(app.topology, logic, seed=7)
        net.inject_stream(
            "H1",
            FrameBatch(
                {"ip_src": HOSTS["H1"], "ip_dst": HOSTS["H2"],
                 "kind": 0, "ident": 0},
                frames,
                payload_bytes=64,
                flow=("bulk", "H1"),
                spacing=1e-6,
            ),
        )
        net.run()
        return net

    def test_counters_recorded_when_installed(self):
        with metrics.collecting() as reg:
            net = self._stream()
        assert reg.value("repro_sim_events_processed_total") == net.sim.events_processed
        assert net.sim.events_processed > 0
        plan_hits = reg.value("repro_sim_plan_cache_total", result="hit")
        plan_misses = reg.value("repro_sim_plan_cache_total", result="miss")
        assert plan_hits > 0 and plan_misses > 0
        assert reg.value("repro_sim_heap_depth_high_water") > 0

    def test_record_identity_instrumented_vs_not(self):
        with metrics.collecting():
            instrumented = self._stream()
        plain = self._stream()
        assert instrumented.deliveries == plain.deliveries


# ---------------------------------------------------------------------------
# Service: /metrics, trace-ID round-trip, memo replacement fold
# ---------------------------------------------------------------------------


def _raw_get(base_url, path):
    with urllib.request.urlopen(f"{base_url}{path}", timeout=30) as resp:
        return resp.status, resp.headers, resp.read()


class TestServiceObservability:
    def test_metrics_endpoint_exposition(self):
        app = firewall_app()
        server = create_server()
        with serve_in_thread(server) as url:
            client = ServiceClient(url)
            client.compile(app.program, app.topology, app.initial_state)
            client.compile(app.program, app.topology, app.initial_state)
            status, headers, body = _raw_get(url, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        text = body.decode()
        assert 'repro_service_requests_total{endpoint="compile"} 2' in text
        assert 'repro_service_compiles_total{source="cold"} 1' in text
        assert 'repro_service_compiles_total{source="memo"} 1' in text
        assert "repro_service_memo_pipelines 1" in text
        assert 'repro_service_request_latency_seconds{endpoint="compile",quantile="0.5"}' in text
        assert "repro_service_uptime_seconds" in text

    def test_trace_id_round_trip(self):
        app = firewall_app()
        server = create_server()
        with serve_in_thread(server) as url:
            client = ServiceClient(url, trace_id="trace-abc.1")
            client.compile(app.program, app.topology, app.initial_state)
            assert client.last_trace_id == "trace-abc.1"
            # error responses carry the ID in the structured body too
            with pytest.raises(ServiceError) as excinfo:
                client.compile("pt=", app.topology, app.initial_state)
            assert excinfo.value.error["trace_id"] == "trace-abc.1"
            assert client.last_trace_id == "trace-abc.1"

    def test_ambient_span_propagates_trace_id(self):
        app = firewall_app()
        server = create_server()
        with serve_in_thread(server) as url:
            client = ServiceClient(url)
            with trace.recording():
                with trace.span("controller.push", trace_id="ambient-7"):
                    client.compile(app.program, app.topology, app.initial_state)
            assert client.last_trace_id == "ambient-7"

    def test_hostile_trace_id_is_dropped_not_echoed(self):
        app = firewall_app()
        server = create_server()
        with serve_in_thread(server) as url:
            # 100 chars of legal header value; rejected by the server's
            # sanitizer (>64), so never echoed or stamped into errors.
            client = ServiceClient(url, trace_id="x" * 100)
            client.compile(app.program, app.topology, app.initial_state)
            assert client.last_trace_id is None

    def test_memo_replacement_folds_health(self):
        app = firewall_app()
        state = ServiceState(CompileOptions())
        first = fresh_pipeline(app)
        first.compiled
        first.report().health["executor.retries"] = 0  # shape check only
        first._health["probe.counter"] = 2  # a fold-visible marker
        state.memo_put("k", first)
        second = fresh_pipeline(app)
        second.compiled
        state.memo_put("k", second)  # replaces the resident pipeline
        assert state.aggregated_health().get("probe.counter") == 2
        # replacing with the same object must NOT double-fold
        state.memo_put("k", second)
        assert state.aggregated_health().get("probe.counter") == 2


# ---------------------------------------------------------------------------
# CLI: --trace + trace summarize
# ---------------------------------------------------------------------------

FIREWALL_SOURCE = """
pt=2 & ip_dst=4; pt<-1;
  ( state(0)=0; (1:1)->(4:1)<state(0)<-1>
  + !state(0)=0; (1:1)->(4:1) );
pt<-2
+ pt=2 & ip_dst=1; state(0)=1; pt<-1; (4:1)->(1:1); pt<-2
"""


class TestCliTrace:
    def test_compile_trace_and_summarize(self, tmp_path, capsys):
        program = tmp_path / "fw.snk"
        program.write_text(FIREWALL_SOURCE)
        out = tmp_path / "trace.json"
        rc = cli_main([
            "compile", str(program), "--topology", "firewall",
            "--report", "--trace", str(out),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "artifact cache loads: 0 hit(s), 0 miss(es)" in text
        assert f"wrote" in text and str(out) in text
        doc = json.loads(out.read_text())
        assert export.validate_chrome_trace(doc) == []
        # the CLI leaves nothing installed behind
        assert trace.active() is None and metrics.active() is None

        rc = cli_main(["trace", "summarize", str(out)])
        assert rc == 0
        summary = capsys.readouterr().out
        assert "repro.compile" in summary
        for stage in ("ets", "nes", "compile"):
            assert stage in summary

    def test_summarize_rejects_non_trace_json(self, tmp_path, capsys):
        bogus = tmp_path / "x.json"
        bogus.write_text('{"nope": 1}')
        rc = cli_main(["trace", "summarize", str(bogus)])
        assert rc == 1
        assert "not a valid Chrome trace" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Byte identity: instrumentation never changes the artifacts
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name,make", APPS, ids=[name for name, _ in APPS])
def test_tables_byte_identical_traced_vs_untraced(name, make):
    app = make()
    plain = guarded_bytes(fresh_pipeline(app).compiled)
    with trace.recording():
        with metrics.collecting():
            traced = guarded_bytes(fresh_pipeline(app).compiled)
    assert traced == plain
