#!/usr/bin/env python3
"""Bandwidth cap, correct vs. uncoordinated (Figure 14).

The provider counts H1-to-H4 packets at switch 4 and closes the reply
path after ``cap`` packets.  The correct runtime enforces the cap
exactly (precisely ``cap`` pings succeed); the uncoordinated strategy
lets extra pings through while rule pushes are in flight -- the paper
measured 15 successful pings against a cap of 10.

Run:  python examples/bandwidth_cap_scenario.py
"""

from repro.apps import bandwidth_cap_app
from repro.baselines import UncoordinatedLogic
from repro.network import (
    CorrectLogic,
    SimNetwork,
    install_ping_responders,
    ping_outcomes,
    send_ping,
)

CAP = 10
TOTAL_PINGS = 22
INTERVAL = 0.5


def run(logic) -> int:
    app = bandwidth_cap_app(CAP)
    net = SimNetwork(app.topology, logic, seed=3)
    install_ping_responders(net)
    pings = []
    for i in range(TOTAL_PINGS):
        at = 0.5 + i * INTERVAL
        send_ping(net, "H1", "H4", i + 1, at)
        pings.append(("H1", "H4", i + 1, at))
    net.run(until=30.0)
    outcomes = ping_outcomes(net, pings)
    for outcome in outcomes:
        status = "OK  " if outcome.succeeded else "DROP"
        print(f"  t={outcome.sent_at:5.1f}s  ping {outcome.ident:2d}  {status}")
    return sum(1 for o in outcomes if o.succeeded)


def main() -> None:
    app = bandwidth_cap_app(CAP)
    print(f"{app.name}: {app.description}\n")

    print("Correct (event-driven consistent):")
    correct = run(CorrectLogic(app.compiled))
    print(f"  -> {correct} pings succeeded (cap is {CAP})\n")

    print("Uncoordinated (2 s controller delay):")
    uncoordinated = run(UncoordinatedLogic(app.compiled, update_delay=2.0))
    print(f"  -> {uncoordinated} pings succeeded (cap is {CAP})\n")

    print(
        f"The correct implementation honors the cap exactly ({correct} == {CAP});\n"
        f"the uncoordinated one overshoots ({uncoordinated} > {CAP}), as in Figure 14(b)."
    )


if __name__ == "__main__":
    main()
