#!/usr/bin/env python3
"""Quickstart: the stateful firewall, end to end.

This walks the full pipeline of the paper on its running example:

1. write a Stateful NetKAT program (Figure 9(a));
2. run the staged pipeline (ETS -> NES -> tagged flow tables) through
   the ``Pipeline`` façade, inspecting each artifact and the per-stage
   timing report;
3. apply a small ``Delta`` and recompile *incrementally*
   (``Pipeline.update``), printing how much of the build was reused;
4. execute the operational semantics on a ping workload;
5. check the resulting network trace against Definition 6;
6. stream 20k frames through the discrete-event simulator with
   ``FrameBatch``/``inject_stream`` and report events/sec;
7. re-run the compile under the observability layer (``repro.obs``):
   record a span trace, export it as a Perfetto-loadable Chrome trace
   file, and print the self-time summary tree next to the metrics the
   instrumented pipeline recorded.

Run:  python examples/quickstart.py
"""

from repro.apps import firewall_app
from repro.consistency import check_trace_against_nes
from repro.events.locality import is_locally_determined


def main() -> None:
    app = firewall_app()
    print(f"Application: {app.name}")
    print(f"  {app.description}\n")

    # -- the staged pipeline: ETS, NES, compiled tables ----------------------
    # Every app owns a Pipeline; compile options (backend, artifact
    # cache, cache off-switches) are one frozen CompileOptions object on
    # the app.  See repro.pipeline for the full knob list.  By default
    # the ETS stage runs the symbolic all-states engine
    # (CompileOptions(symbolic_extract=True)): one partial-evaluation
    # pass over every state-component value, instantiated per state --
    # the report below splits it into ets.symbolic / ets.instantiate.
    pipeline = app.pipeline
    print("Event-driven transition system:")
    print(pipeline.ets, "\n")
    nes = pipeline.nes
    print(f"NES: {nes}")
    print(f"  locally determined: {is_locally_determined(nes)}")
    print(f"  event-sets: {[sorted(map(repr, s)) for s in sorted(nes.event_sets(), key=len)]}\n")

    compiled = pipeline.compiled
    print(f"Compiled: {compiled}")
    for switch, table in sorted(compiled.guarded_tables().items()):
        print(f"  switch {switch}:")
        for rule in table:
            print(f"    {rule!r}")
    print(f"\nPer-stage report:\n{pipeline.report()}\n")

    # -- fault tolerance: signed artifact cache + health counters ------------
    # With cache_hmac_key set (or the REPRO_CACHE_HMAC_KEY environment
    # variable), cached artifacts carry an HMAC-SHA256 signature and
    # loads verify it: a tampered or unsigned entry is a recorded miss,
    # quarantined to *.pkl.bad and recompiled over -- or a hard
    # ArtifactIntegrityError under strict_cache=True.  Every absorbed
    # failure (cache rejections, executor retries, thread->serial
    # fallbacks) is counted in report().health; empty means clean.
    import tempfile

    from repro import CompileOptions, Pipeline

    with tempfile.TemporaryDirectory() as cache_dir:
        opts = CompileOptions(
            cache_dir=cache_dir,
            cache_hmac_key="example-key",  # or export REPRO_CACHE_HMAC_KEY
            strict_cache=False,
        )
        cold = Pipeline(app.program, app.topology, app.initial_state, opts)
        cold.compiled
        warm = Pipeline(app.program, app.topology, app.initial_state, opts)
        warm.compiled
        print(f"Signed artifact cache: cold={cold.report().artifact_cache}, "
              f"warm={warm.report().artifact_cache}")
        print(f"Health counters: {dict(warm.report().health) or 'ok'}\n")

    # -- incremental recompilation: Pipeline.update --------------------------
    # A controller rarely gets a fresh program; it gets a small delta.
    # Pipeline.update(Delta(...)) diffs the symbolic guard partition,
    # re-instantiates only the affected ETS states, and re-compiles only
    # the affected configurations -- byte-identical to a cold rebuild of
    # the post-delta program, at a fraction of the cost.  Here: start
    # the firewall in state [1] ("H1 already contacted H4").
    from repro import Delta

    updated = pipeline.update(Delta(set_state=((0, 1),)))
    stats = dict(updated.report().stats)
    print(f"Incremental update (initial state [0] -> [1]): "
          f"{updated.compiled}")
    print(f"  reuse: {stats['update.reuse_percent']}% of configurations "
          f"({stats['update.configurations_reused']} reused, "
          f"{stats['update.configurations_recompiled']} recompiled; "
          f"ETS states: {stats['update.states_reused']} reused, "
          f"{stats['update.states_reinstantiated']} reinstantiated)\n")

    # -- execute the Figure 7 semantics -----------------------------------------
    rt = app.runtime(seed=0)

    print("1. H4 pings H1 before any outgoing traffic -> must be dropped")
    rt.inject("H4", {"ip_dst": 1, "ip_src": 4, "ident": 1})
    rt.run_until_quiescent()
    print(f"   delivered={len(rt.state.delivered)} dropped={len(rt.state.dropped)}")

    print("2. H1 contacts H4 -> allowed, and triggers the event at s4")
    rt.inject("H1", {"ip_dst": 4, "ip_src": 1, "ident": 2})
    rt.run_until_quiescent()
    print(f"   delivered={len(rt.state.delivered)} dropped={len(rt.state.dropped)}")
    print(f"   s4 register: {sorted(map(repr, rt.state.switch(4).known_events))}")

    print("3. H4 pings H1 again -> now allowed (s4 heard the event)")
    rt.inject("H4", {"ip_dst": 1, "ip_src": 4, "ident": 3})
    rt.run_until_quiescent()
    print(f"   delivered={len(rt.state.delivered)} dropped={len(rt.state.dropped)}\n")

    # -- verify the trace (the empirical Theorem 1) ---------------------------------
    trace = rt.network_trace()
    report = check_trace_against_nes(trace, nes, app.topology)
    print(f"Network trace: {len(trace)} positions, {len(trace.trace_indices)} packet traces")
    print(f"Correct w.r.t. Definition 6: {report.correct}")
    assert report.correct, report.reason

    # -- heavy traffic: batched streams through the simulator -----------------
    # For throughput experiments the discrete-event simulator takes
    # whole packet streams at once: a FrameBatch describes the frames
    # as columns (constant headers are interned to one shared Packet),
    # and inject_stream schedules them all.  The SimOptions knobs
    # (interned event masks, batched classification, lazy-heap
    # scheduling) change *speed only* -- with the knobs off you get the
    # same DeliveryRecord sequence, slower (see
    # tests/test_sim_streaming.py for the pinned identity goldens).
    import time

    from repro import SimOptions
    from repro.network import CorrectLogic, FrameBatch, SimNetwork

    stream_net = SimNetwork(
        app.topology,
        CorrectLogic(app.compiled, options=SimOptions()),
        seed=7,
        options=SimOptions(),
    )
    frames = 20_000
    stream_net.inject_stream(
        "H1",
        FrameBatch(
            {"ip_src": 1, "ip_dst": 4, "kind": 0, "ident": 0},
            frames,
            payload_bytes=64,
            flow=("bulk", "H1", "H4"),
            spacing=1e-6,
        ),
    )
    start = time.perf_counter()
    stream_net.run()
    elapsed = time.perf_counter() - start
    events = stream_net.sim.events_processed
    print(f"\nStreamed {frames} frames H1->H4: "
          f"{len(stream_net.deliveries_to('H4'))} delivered, "
          f"{events} events in {elapsed:.3f}s "
          f"({events / elapsed:,.0f} events/sec)")

    # -- observability: span traces + metrics --------------------------------
    # Everything above ran with the obs layer uninstalled (each hook is
    # one module-global check).  Installing a tracer + registry records
    # a span per pipeline stage, cache access, and per-configuration
    # compile, and mirrors every health/cache counter into Prometheus
    # metric families.  The CLI spelling of this block is
    #   python -m repro compile prog.snk --report --trace out.json
    #   python -m repro trace summarize out.json
    import json
    import tempfile as _tempfile

    from repro.obs import export, metrics, trace as obs_trace

    with metrics.collecting() as registry, obs_trace.recording() as tracer:
        with obs_trace.span("quickstart.compile"):
            traced = Pipeline(app.program, app.topology, app.initial_state)
            traced.compiled
    with _tempfile.NamedTemporaryFile(
        "r", suffix=".trace.json", delete=False
    ) as handle:
        spans = export.write_chrome_trace(handle.name, tracer)
        doc = json.load(open(handle.name))
    assert export.validate_chrome_trace(doc) == [], "trace schema broke"
    print(f"\nTraced recompile: {spans} spans -> {handle.name} "
          f"(drag into Perfetto / chrome://tracing)")
    print("Self-time summary (repro trace summarize):")
    print(export.format_summary(export.summarize(tracer.finished())))
    stage_count = registry.histogram(
        "repro_pipeline_stage_seconds", stage="compile"
    ).count
    print(f"\nMetrics recorded alongside: compile-stage observations: "
          f"{stage_count}; Prometheus exposition (a GET /metrics away "
          f"when served):")
    for line in export.prometheus_text(registry).splitlines():
        if line.startswith("repro_pipeline_stage_seconds_count"):
            print(f"  {line}")


if __name__ == "__main__":
    main()
