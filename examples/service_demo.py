#!/usr/bin/env python3
"""Compilation as a service: the daemon, end to end.

This is the fleet-side story — a controller asks a long-running
compilation service for tables instead of linking the compiler:

1. start the daemon in-process (``repro.service.serve_in_thread``;
   a deployment would run ``python -m repro serve --port 8008
   --cache-dir DIR`` instead) with a shared on-disk artifact cache;
2. compile the stateful firewall over HTTP through the urllib
   ``ServiceClient`` and check the served tables are byte-identical to
   a direct ``Pipeline`` build;
3. repeat the request (an in-process memo hit) and push an
   incremental ``Delta`` through ``POST /update``;
4. read ``GET /health`` and the memo/disk/cold/single-flight hit
   counters from ``GET /stats``;
5. scrape ``GET /metrics`` and check the Prometheus text exposition
   carries the compile-source, request, and latency series.

Run:  python examples/service_demo.py

This script doubles as the CI smoke step for the service: it exits
non-zero if any served artifact deviates from the direct build.
"""

import tempfile
import urllib.request

from repro import CompileOptions, Delta, Pipeline
from repro.apps import firewall_app
from repro.service import ServiceClient, create_server, serve_in_thread
from repro.service.protocol import tables_to_wire


def main() -> None:
    app = firewall_app()
    direct = Pipeline(app.program, app.topology, app.initial_state)

    with tempfile.TemporaryDirectory() as cache_dir:
        server = create_server(
            options=CompileOptions(cache_dir=cache_dir), memo_size=64
        )
        with serve_in_thread(server) as base_url:
            print(f"daemon listening on {base_url} (cache: {cache_dir})\n")
            client = ServiceClient(base_url)

            version = client.version()
            print(
                f"service version: package {version['package']}, "
                f"protocol {version['protocol']}, "
                f"artifact format {version['artifact_format']}"
            )

            # -- cold compile over the wire ------------------------------
            result = client.compile(
                app.program, app.topology, app.initial_state
            )
            print(f"\nPOST /compile -> source={result['source']}")
            print(f"  artifact key: {result['artifact_key'][:16]}...")
            print(f"  stages: {result['report']['stages']}")
            assert result["source"] == "cold"
            assert result["tables"] == tables_to_wire(direct.compiled), (
                "served tables deviate from the direct Pipeline build"
            )
            assert result["artifact_key"] == direct.artifact_key()
            print("  tables byte-identical to the direct build: ok")

            # -- warm repeat: the in-process pipeline memo ----------------
            again = client.compile(
                app.program, app.topology, app.initial_state
            )
            print(f"\nPOST /compile (repeat) -> source={again['source']}")
            assert again["source"] == "memo"

            # -- incremental recompilation over the wire ------------------
            delta = Delta(set_state=((0, 1),))
            updated = client.update(result["artifact_key"], delta)
            reuse = updated["report"]["stats"]["update.reuse_percent"]
            print(
                f"\nPOST /update (state(0) <- 1) -> "
                f"new key {updated['artifact_key'][:16]}..., "
                f"{reuse}% of the build reused"
            )
            cold = Pipeline(
                app.program,
                app.topology,
                delta.apply_initial_state(app.initial_state),
            )
            assert updated["tables"] == tables_to_wire(cold.compiled), (
                "updated tables deviate from a cold post-delta rebuild"
            )

            # -- the observability surface --------------------------------
            ok, health = client.health()
            print(f"\nGET /health -> ok={ok} health={health['health']}")
            assert ok, f"daemon unhealthy: {health}"

            stats = client.stats()
            print("GET /stats ->")
            print(f"  compiles: {stats['compiles']}")
            print(f"  memo: {stats['memo']}")
            for endpoint, row in sorted(stats["endpoints"].items()):
                latency = row["latency"].get("p50_ms", "-")
                print(
                    f"  {endpoint}: {row['count']} requests, "
                    f"{row['errors']} errors, p50 {latency} ms"
                )
            assert stats["compiles"]["memo_hits"] >= 1
            assert stats["compiles"]["cold"] >= 1

            # -- Prometheus exposition ------------------------------------
            with urllib.request.urlopen(
                f"{base_url}/metrics", timeout=30
            ) as resp:
                content_type = resp.headers["Content-Type"]
                exposition = resp.read().decode()
            assert content_type.startswith("text/plain; version=0.0.4"), (
                f"unexpected /metrics content type: {content_type}"
            )
            for needle in (
                'repro_service_compiles_total{source="cold"} 1',
                'repro_service_compiles_total{source="memo"} 1',
                'repro_service_requests_total{endpoint="compile"}',
                'repro_service_request_latency_seconds{endpoint="compile",quantile="0.5"}',
                "repro_service_updates_total 1",
                "repro_service_uptime_seconds",
            ):
                assert needle in exposition, f"/metrics missing {needle!r}"
            scraped = [l for l in exposition.splitlines()
                       if l.startswith("repro_service_compiles_total")]
            print("\nGET /metrics -> Prometheus text exposition, e.g.")
            for line in scraped:
                print(f"  {line}")

    print("\ndaemon shut down cleanly; all served artifacts verified")


if __name__ == "__main__":
    main()
