#!/usr/bin/env python3
"""Tutorial: build, verify, and run your own event-driven application.

This walks through everything a user of the library needs to write a
new stateful program from scratch:

1. define a topology;
2. write the program in concrete Stateful NetKAT syntax;
3. inspect its ETS and NES, checking the section 3.1 conditions and the
   locality restriction;
4. exhaustively verify small workloads against Definition 6;
5. run it on the timed simulator.

The program here is a "one-shot gate": host H1 may send H4 exactly one
probe; the probe's arrival closes the gate (the opposite of the
firewall -- it starts open and shuts).

Run:  python examples/custom_app.py
"""

from repro import CompileOptions
from repro.apps.base import App
from repro.events.locality import is_locally_determined
from repro.netkat import parse_policy, pretty_policy
from repro.network import (
    CorrectLogic,
    SimNetwork,
    install_ping_responders,
    ping_outcomes,
    send_ping,
)
from repro.topology import Topology
from repro.verify import explore_all_interleavings

PROGRAM = """
  # While the gate is open (state 0), probes flow and shut it.
  pt=2 & ip_dst=4; state(0)=0; pt<-1; (1:1)->(4:1)<state(0)<-1>; pt<-2

  # Replies from H4 are always allowed (so the probe's answer returns).
+ pt=2 & ip_dst=1; pt<-1; (4:1)->(1:1); pt<-2
"""


def build_app() -> App:
    topology = Topology()
    topology.add_duplex_link("1:1", "4:1")
    topology.add_host("H1", "1:2")
    topology.add_host("H4", "4:2")
    return App(
        name="one-shot-gate",
        program=parse_policy(PROGRAM),
        topology=topology,
        initial_state=(0,),
        description="H1 gets exactly one probe to H4; the probe shuts the gate.",
        # All compile knobs live here; e.g. backend="thread" shards the
        # per-configuration compiles, cache_dir=... persists artifacts.
        options=CompileOptions(),
    )


def main() -> None:
    app = build_app()
    print(f"{app.name}: {app.description}\n")
    print("Program (pretty-printed back from the AST):")
    print(" ", pretty_policy(app.program), "\n")

    pipeline = app.pipeline  # the staged toolchain behind ets/nes/compiled
    print("ETS:")
    print(pipeline.ets, "\n")
    nes = pipeline.nes  # raises if the section 3.1 conditions fail
    print(f"NES: {nes}")
    print(f"locally determined: {is_locally_determined(nes)}\n")
    compiled = pipeline.compiled
    print(f"Compiled: {compiled}")
    print(f"{pipeline.report()}\n")

    print("Exhaustively verifying a 2-probe race against Definition 6 ...")
    result = explore_all_interleavings(
        app,
        [
            ("H1", {"ip_dst": 4, "ip_src": 1, "ident": 1}),
            ("H1", {"ip_dst": 4, "ip_src": 1, "ident": 2}),
        ],
    )
    print(
        f"  {result.states_visited} states explored, "
        f"{len(result.violations)} violations\n"
    )
    assert result.all_correct

    print("Timed simulation: three probes, one should pass:")
    net = SimNetwork(app.topology, CorrectLogic(app.compiled), seed=1)
    install_ping_responders(net)
    pings = []
    for i, at in enumerate([0.5, 1.5, 2.5], start=1):
        send_ping(net, "H1", "H4", i, at)
        pings.append(("H1", "H4", i, at))
    net.run(until=10.0)
    passed = 0
    for outcome in ping_outcomes(net, pings):
        status = "OK" if outcome.succeeded else "blocked"
        passed += outcome.succeeded
        print(f"  t={outcome.sent_at:3.1f}s probe {outcome.ident}: {status}")
    assert passed == 1
    print("\nExactly one probe passed; the gate shut consistently.")


if __name__ == "__main__":
    main()
