#!/usr/bin/env python3
"""The ring workload: update scalability (section 5.2, Figure 16).

H1 and H2 sit on opposite sides of a switch ring.  Traffic initially
flows clockwise; a signal packet flips the network to counterclockwise
forwarding.  This example runs one diameter and reports:

- goodput with the tag-based runtime vs. the static reference (the
  Figure 16(a) overhead comparison), and
- how long each switch took to learn about the event, with and without
  controller assistance (the Figure 16(b) convergence comparison).

Run:  python examples/ring_scalability.py [diameter]
"""

import sys

from repro.apps import SIGNAL_FIELD, ring_app
from repro.baselines import ReferenceLogic
from repro.network import (
    CorrectLogic,
    SimNetwork,
    goodput,
    send_bulk,
    send_ping,
    install_ping_responders,
)
from repro.network.simulator import Frame
from repro.netkat.packet import Packet


def measure_goodput(app, logic) -> float:
    net = SimNetwork(app.topology, logic, seed=5)
    send_bulk(net, "H1", "H2", packets=500, payload_bytes=1470)
    net.run(until=60.0)
    return goodput(net, "H1", "H2")


def measure_convergence(app, controller_assist: bool) -> dict:
    logic = CorrectLogic(app.compiled, controller_assist=controller_assist)
    net = SimNetwork(app.topology, logic, seed=5)
    install_ping_responders(net)
    # Signal packet at t=1.0 triggers the event at H2's switch.
    signal = Frame(
        packet=Packet(
            {"ip_src": 1, "ip_dst": 2, SIGNAL_FIELD: 1, "kind": 0, "ident": 0}
        ),
        flow=("signal", "H1", "H2"),
    )
    net.inject("H1", signal, at=1.0)
    # Background pings keep digests flowing around the ring.
    for i in range(60):
        send_ping(net, "H1", "H2", 100 + i, at=0.5 + i * 0.1)
    net.run(until=20.0)
    event_time = 1.0
    learned = {
        switch: t - event_time
        for (switch, _event), t in net.event_learned_at.items()
    }
    return learned


def main() -> None:
    diameter = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    app = ring_app(diameter)
    print(f"{app.name}: {app.description}")
    print(f"  configurations: {len(app.compiled.states)}, "
          f"rules: {app.compiled.total_rule_count()}\n")

    reference = ReferenceLogic(
        app.compiled.config_for_state(app.compiled.nes.initial_state)
    )
    ours = CorrectLogic(app.compiled)
    ref_bw = measure_goodput(app, reference)
    our_bw = measure_goodput(app, ours)
    overhead = (1 - our_bw / ref_bw) * 100 if ref_bw else float("nan")
    print("Figure 16(a) -- bandwidth:")
    print(f"  reference (no tags): {ref_bw / 1e6:7.2f} MB/s")
    print(f"  event-driven runtime: {our_bw / 1e6:6.2f} MB/s")
    print(f"  overhead: {overhead:.1f}%\n")

    print("Figure 16(b) -- event discovery time per switch (s after event):")
    for assist in (False, True):
        learned = measure_convergence(app, controller_assist=assist)
        label = "with controller assist" if assist else "digest gossip only"
        times = [learned.get(s, float("inf")) for s in sorted(app.topology.switches)]
        known = [t for t in times if t != float("inf")]
        print(f"  {label:24s} max={max(known):6.3f}s avg={sum(known)/len(known):6.3f}s "
              f"({len(known)}/{len(times)} switches learned)")


if __name__ == "__main__":
    main()
