#!/usr/bin/env python3
"""Port-knocking authentication, correct vs. uncoordinated (Figure 13).

The untrusted host H4 must contact H1 and then H2 (in that order) before
it may reach H3.  We replay the paper's ping timeline on the timed
simulator twice -- once with the correct tag-based runtime, once with an
uncoordinated controller that pushes updates after a delay -- and print
the two timelines side by side.

With the correct runtime the H4->H3 ping fired immediately after the
second knock succeeds; the uncoordinated strategy leaves the H3 path
closed until the delayed rule push lands, temporarily refusing access
that the program granted (the Figure 13(b) anomaly).

Run:  python examples/authentication_scenario.py
"""

from repro.apps import authentication_app
from repro.baselines import UncoordinatedLogic
from repro.network import (
    CorrectLogic,
    SimNetwork,
    install_ping_responders,
    ping_outcomes,
    send_ping,
)

# (src, dst, time) -- probe H3 and H2 early (should fail), knock H1,
# knock H2, then try H3 again.
SCHEDULE = [
    ("H4", "H3", 0.5),
    ("H4", "H2", 1.0),
    ("H4", "H1", 1.5),  # first knock: event (dst=H1, 1:1)
    ("H4", "H3", 2.0),  # still blocked: only one knock so far
    ("H4", "H2", 2.5),  # second knock: event (dst=H2, 2:1)
    ("H4", "H3", 3.0),  # should now succeed -- immediately
    ("H4", "H3", 3.5),
]


def run(logic_name: str, logic) -> None:
    app = authentication_app()
    net = SimNetwork(app.topology, logic, seed=11)
    install_ping_responders(net)
    pings = []
    for ident, (src, dst, at) in enumerate(SCHEDULE, start=1):
        send_ping(net, src, dst, ident, at)
        pings.append((src, dst, ident, at))
    net.run(until=12.0)
    print(f"{logic_name}:")
    for outcome in ping_outcomes(net, pings):
        status = "OK  " if outcome.succeeded else "DROP"
        print(
            f"  t={outcome.sent_at:4.1f}s  {outcome.src}->{outcome.dst}  {status}"
        )
    print()


def main() -> None:
    app = authentication_app()
    print(f"{app.name}: {app.description}\n")
    run("Correct (event-driven consistent)", CorrectLogic(app.compiled))
    run(
        "Uncoordinated (2 s controller delay)",
        UncoordinatedLogic(app.compiled, update_delay=2.0),
    )
    print(
        "Note how the uncoordinated run refuses (or delays) access that\n"
        "the program already granted -- the Figure 13(b) anomaly."
    )


if __name__ == "__main__":
    main()
