"""Ablation: controller assistance (CTRLSEND broadcasts) across apps.

Figure 16(b) compares digest-only gossip against controller broadcast
on the ring; this ablation generalizes the comparison to the firewall
and authentication topologies, measuring how quickly *remote* switches
(those the triggering packet never visits) learn about events.
"""

import pytest

from _scenarios import run_ring_convergence
from repro.apps import authentication_app, firewall_app
from repro.network import (
    CorrectLogic,
    SimNetwork,
    install_ping_responders,
    send_ping,
)


def run_app_convergence(app, schedule, controller_assist, horizon=20.0):
    logic = CorrectLogic(app.compiled, controller_assist=controller_assist)
    net = SimNetwork(app.topology, logic, seed=9)
    install_ping_responders(net)
    for ident, (src, dst, at) in enumerate(schedule, start=1):
        send_ping(net, src, dst, ident, at)
    net.run(until=horizon)
    # (switch, event) coverage: gossip only reaches switches some packet
    # visits after the event; the controller reaches everyone.
    return set(net.event_learned_at), len(net.event_learned_at)


def sweep():
    results = {}
    # Firewall: the event is at s4; s1 only hears via reply digests or ctrl.
    fw = firewall_app()
    fw_schedule = [("H1", "H4", 1.0)]
    results["firewall"] = (
        run_app_convergence(fw, fw_schedule, False),
        run_app_convergence(fw, fw_schedule, True),
    )
    # Authentication: events at s1/s2; s3/s4 rely on gossip or ctrl.
    auth = authentication_app()
    auth_schedule = [("H4", "H1", 1.0), ("H4", "H2", 3.0)]
    results["authentication"] = (
        run_app_convergence(auth, auth_schedule, False),
        run_app_convergence(auth, auth_schedule, True),
    )
    # Ring timing, as in Figure 16(b).
    ring_gossip = run_ring_convergence(4, False)
    ring_assist = run_ring_convergence(4, True)
    return results, (ring_gossip, ring_assist)


def test_ablation_controller_assist(benchmark):
    results, (ring_gossip, ring_assist) = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )

    print("\nAblation -- controller assist, (switch, event) coverage:")
    print(f"  {'app':>15s}  {'gossip only':>11s}  {'with ctrl':>9s}")
    for name, ((g_pairs, g_n), (a_pairs, a_n)) in results.items():
        print(f"  {name:>15s}  {g_n:>11d}  {a_n:>9d}")
    g_max, a_max = max(ring_gossip.values()), max(ring_assist.values())
    print(f"  ring-4 last-switch learn time: gossip {g_max:.3f}s, "
          f"assisted {a_max:.3f}s")

    for name, ((g_pairs, g_n), (a_pairs, a_n)) in results.items():
        # Controller assist reaches at least everything gossip reaches.
        assert g_pairs <= a_pairs, name
    # On the authentication star, the gossip path misses switches the
    # replies never visit (s3, and s4 for one event); assist covers them.
    auth_gossip, auth_assist = results["authentication"]
    assert auth_assist[1] > auth_gossip[1]
    # And on the ring, assist strictly speeds up the slowest switch.
    assert a_max < g_max
