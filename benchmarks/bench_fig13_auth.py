"""Figure 13: authentication (port knocking), correct vs. incorrect.

Paper's plot: H4 fails to reach H3 and H2, knocks H1, still fails on
H3, knocks H2, and then immediately reaches H3.  Uncoordinated updates
leave H3 temporarily unreachable even after both knocks.
"""

import pytest

from _scenarios import run_ping_schedule
from repro.apps import authentication_app
from repro.baselines import UncoordinatedLogic
from repro.network import CorrectLogic

SCHEDULE = [
    ("H4", "H3", 0.5),
    ("H4", "H2", 1.0),
    ("H4", "H1", 1.5),   # knock 1
    ("H4", "H3", 2.0),   # still blocked (one knock)
    ("H4", "H1", 2.5),
    ("H4", "H2", 3.0),   # knock 2 (correct run transitions here)
    ("H4", "H3", 3.5),   # correct: succeeds immediately
    ("H4", "H3", 4.0),
    ("H4", "H2", 4.5),   # uncoordinated retries the second knock
    ("H4", "H3", 5.0),   # uncoordinated: still blocked (push in flight)
    ("H4", "H3", 8.5),   # uncoordinated: finally unlocked
]


def run_both():
    app = authentication_app()
    correct = run_ping_schedule(
        app, CorrectLogic(app.compiled), SCHEDULE, horizon=20.0
    )
    uncoordinated = run_ping_schedule(
        app,
        UncoordinatedLogic(app.compiled, update_delay=2.0),
        SCHEDULE,
        horizon=20.0,
    )
    return correct, uncoordinated


def show(label, outcomes):
    print(f"\nFigure 13 ({label}):")
    for o in outcomes:
        print(f"  t={o.sent_at:4.1f}s  {o.src}->{o.dst}  "
              f"{'OK' if o.succeeded else 'drop'}")


def test_fig13_authentication(benchmark):
    correct, uncoordinated = benchmark.pedantic(run_both, rounds=1, iterations=1)
    show("a: correct", correct)
    show("b: uncoordinated", uncoordinated)

    by_time = {o.sent_at: o for o in correct}
    # pre-knock probes fail
    assert not by_time[0.5].succeeded and not by_time[1.0].succeeded
    # knock 1 succeeds; H3 still blocked with only one knock
    assert by_time[1.5].succeeded and not by_time[2.0].succeeded
    # knock 2 succeeds and unlocks H3 immediately
    assert by_time[3.0].succeeded
    assert by_time[3.5].succeeded and by_time[4.0].succeeded

    # uncoordinated: the knocks eventually go through, but H3 access
    # lags behind the program's state (the Figure 13(b) anomaly).
    u_by_time = {o.sent_at: o for o in uncoordinated}
    assert u_by_time[1.5].succeeded          # knock 1 accepted
    assert not u_by_time[3.5].succeeded      # H3 blocked although knocked
    assert u_by_time[4.5].succeeded          # knock 2 lands post-push
    assert not u_by_time[5.0].succeeded      # H3 *still* blocked
    assert u_by_time[8.5].succeeded          # unlocked only after the push
