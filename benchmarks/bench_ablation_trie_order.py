"""Ablation: does the section 5.3 pairing heuristic actually matter?

Compares three leaf orderings of the configuration trie: the identity
order (configurations as generated), the paper's greedy
max-intersection pairing, and the exact optimum (small instances).
"""

import random

import pytest

from repro.optimize.trie import (
    build_trie,
    exact_best_order,
    heuristic_order,
    naive_rule_count,
    trie_rule_count,
    _padded,
)


def random_instance(rng, pool_size=12, n_configs=8, density=0.4):
    pool = [f"r{i}" for i in range(pool_size)]
    return [
        frozenset(r for r in pool if rng.random() < density)
        for _ in range(n_configs)
    ]


def sweep(n_instances=30):
    rng = random.Random(7)
    rows = []
    for _ in range(n_instances):
        configs = random_instance(rng)
        naive = naive_rule_count(configs)
        identity = trie_rule_count(build_trie(_padded(configs)))
        heuristic = trie_rule_count(build_trie(heuristic_order(configs)))
        rows.append((naive, identity, heuristic))
    # exact optimum on smaller instances (4 configs)
    exact_rows = []
    for _ in range(10):
        configs = random_instance(rng, n_configs=4)
        heuristic = trie_rule_count(build_trie(heuristic_order(configs)))
        _, exact = exact_best_order(configs, max_leaves=4)
        exact_rows.append((heuristic, exact))
    return rows, exact_rows


def test_ablation_trie_order(benchmark):
    rows, exact_rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    total_naive = sum(r[0] for r in rows)
    total_identity = sum(r[1] for r in rows)
    total_heuristic = sum(r[2] for r in rows)
    print("\nAblation -- trie leaf ordering (30 instances, 8 configs each):")
    print(f"  no sharing (naive):     {total_naive}")
    print(f"  identity order trie:    {total_identity}")
    print(f"  heuristic pairing trie: {total_heuristic}")
    gap = sum(h - e for h, e in exact_rows)
    print(f"  heuristic vs exact optimum on 10 small instances: +{gap} rules total")

    # Sharing helps even with the identity order; the heuristic helps more.
    assert total_identity <= total_naive
    assert total_heuristic <= total_identity
    # The heuristic is near-optimal on small instances.
    assert all(h >= e for h, e in exact_rows)
    assert gap <= 5
