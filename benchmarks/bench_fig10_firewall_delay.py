"""Figure 10: stateful firewall -- incorrectly dropped packets vs. the
uncoordinated controller's update delay.

Paper's series: delay swept 0..5000 ms; 10 runs per point; the
uncoordinated strategy drops at least one packet even at 0 ms and drops
more as the delay grows; the correct implementation drops none.
"""

import pytest

from _scenarios import run_firewall_correct_drop_count, run_firewall_drop_count

DELAYS_MS = [0, 100, 500, 1000, 2000, 3000, 5000]
RUNS_PER_POINT = 10


def sweep():
    series = []
    for delay_ms in DELAYS_MS:
        total = sum(
            run_firewall_drop_count(delay_ms / 1000.0, seed)
            for seed in range(RUNS_PER_POINT)
        )
        series.append((delay_ms, total))
    correct_total = sum(
        run_firewall_correct_drop_count(seed) for seed in range(RUNS_PER_POINT)
    )
    return series, correct_total


def test_fig10_firewall_delay(benchmark):
    series, correct_total = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nFigure 10 -- total dropped packets vs delay "
          f"({RUNS_PER_POINT} runs per point):")
    print(f"  {'delay (ms)':>10s}  {'uncoordinated':>14s}  {'correct':>8s}")
    for delay_ms, dropped in series:
        print(f"  {delay_ms:>10d}  {dropped:>14d}  {correct_total:>8d}")

    # Claim 1: the correct implementation never drops a packet.
    assert correct_total == 0
    # Claim 2: even at zero delay, uncoordinated drops at least one
    # packet in every run.
    assert series[0][1] >= RUNS_PER_POINT
    # Claim 3: drops are monotonically non-decreasing-ish with delay
    # (compare the endpoints, as the paper's trend line does).
    assert series[-1][1] >= series[0][1]
