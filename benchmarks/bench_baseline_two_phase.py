"""Baseline comparison: per-packet consistent updates are not enough.

Sections 1-2 argue that the classic consistent update [33] -- which
guarantees every packet is processed by a single configuration --
cannot implement the stateful firewall, because it constrains single
packets, not the *timing* of the update relative to the event.  This
bench runs the firewall under three strategies and reports dropped
replies and per-packet consistency:

- event-driven (ours): zero drops, per-packet consistent;
- two-phase [33]: per-packet consistent, but drops replies during the
  flip window;
- uncoordinated: drops replies *and* (on other apps) mixes
  configurations.
"""

import pytest

from _scenarios import firewall_schedule, run_ping_schedule
from repro.apps import firewall_app
from repro.baselines import TwoPhaseLogic, UncoordinatedLogic
from repro.network import CorrectLogic


def run_all():
    app = firewall_app()
    schedule = firewall_schedule(n_pings=10, interval=0.3)
    ours = run_ping_schedule(
        app, CorrectLogic(app.compiled), schedule, horizon=20.0
    )
    two_phase = run_ping_schedule(
        app, TwoPhaseLogic(app.compiled, flip_delay=0.8), schedule, horizon=20.0
    )
    uncoordinated = run_ping_schedule(
        app,
        UncoordinatedLogic(app.compiled, update_delay=0.8),
        schedule,
        horizon=20.0,
    )
    return ours, two_phase, uncoordinated


def test_two_phase_baseline(benchmark):
    ours, two_phase, uncoordinated = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    def drops(outcomes):
        return sum(1 for o in outcomes if not o.succeeded)

    print("\nBaseline comparison -- firewall, 10 pings, dropped replies:")
    print(f"  event-driven (ours):        {drops(ours)}")
    print(f"  two-phase consistent [33]:  {drops(two_phase)}")
    print(f"  uncoordinated:              {drops(uncoordinated)}")

    # Ours drops nothing; both baselines drop replies during their
    # update windows -- per-packet consistency alone does not help.
    assert drops(ours) == 0
    assert drops(two_phase) >= 1
    assert drops(uncoordinated) >= 1
    # Both controller-driven baselines converge eventually.
    assert two_phase[-1].succeeded and uncoordinated[-1].succeeded
