"""Figure 11: stateful firewall ping timelines, correct vs. incorrect.

Paper's plot: H4->H1 pings fail until H1 contacts H4, then succeed
immediately (correct); with uncoordinated updates, H1->H4 pings lose
their replies during the update window.
"""

import pytest

from _scenarios import run_ping_schedule
from repro.apps import firewall_app
from repro.baselines import UncoordinatedLogic
from repro.network import CorrectLogic

# The paper's interleaved workload: H4->H1 early (must fail), H1->H4
# (triggers the event), then both directions.
SCHEDULE = (
    [("H4", "H1", 0.5)]
    + [("H1", "H4", 1.0)]
    + [(pair[0], pair[1], 1.5 + 0.5 * i + 0.1 * j)
       for i in range(6)
       for j, pair in enumerate([("H4", "H1"), ("H1", "H4")])]
)


def run_both():
    app = firewall_app()
    correct = run_ping_schedule(
        app, CorrectLogic(app.compiled), SCHEDULE, horizon=20.0
    )
    uncoordinated = run_ping_schedule(
        app,
        UncoordinatedLogic(app.compiled, update_delay=2.0),
        SCHEDULE,
        horizon=20.0,
    )
    return correct, uncoordinated


def show(label, outcomes):
    print(f"\nFigure 11 ({label}):")
    for o in outcomes:
        status = "OK" if o.succeeded else "drop"
        print(f"  t={o.sent_at:4.1f}s  {o.src}->{o.dst}  {status}")


def test_fig11_firewall_pings(benchmark):
    correct, uncoordinated = benchmark.pedantic(run_both, rounds=1, iterations=1)
    show("a: correct", correct)
    show("b: uncoordinated", uncoordinated)

    # (a) the pre-event H4->H1 ping fails; everything after the event works.
    assert not correct[0].succeeded
    assert all(o.succeeded for o in correct[1:])
    # (b) uncoordinated loses H1->H4 replies during the window ...
    h1_h4 = [o for o in uncoordinated if o.src == "H1"]
    assert any(not o.succeeded for o in h1_h4)
    # ... but converges: the last pings of both directions succeed.
    assert uncoordinated[-1].succeeded
