"""Figure 17: the rule-sharing heuristic on random configurations.

Paper's setup: 64 randomly-generated configurations drawn from a pool
of 20 rules; the scatter of (heuristic rules, original rules) sits well
above the x=y line, with ~32-37% average savings.
"""

import random

import pytest

from repro.optimize.trie import optimize_configurations

POOL_SIZE = 20
N_CONFIGS = 64
DENSITY = 0.3
N_INSTANCES = 25


def sweep():
    pool = [f"rule{i}" for i in range(POOL_SIZE)]
    points = []
    for seed in range(N_INSTANCES):
        rng = random.Random(seed)
        configs = [
            frozenset(r for r in pool if rng.random() < DENSITY)
            for _ in range(N_CONFIGS)
        ]
        result = optimize_configurations(configs)
        points.append((result.optimized, result.original))
    return points


def test_fig17_heuristic(benchmark):
    points = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print(f"\nFigure 17 -- {N_INSTANCES} instances of {N_CONFIGS} random "
          f"configurations over {POOL_SIZE} rules:")
    print(f"  {'w/ heuristic':>12s}  {'original':>9s}  {'saved':>6s}")
    savings = []
    for optimized, original in points:
        fraction = (original - optimized) / original
        savings.append(fraction)
        print(f"  {optimized:>12d}  {original:>9d}  {fraction * 100:>5.1f}%")
    average = sum(savings) / len(savings)
    print(f"  average savings: {average * 100:.1f}% (paper: ~32%)")

    # every point is on or above the x=y line (never worse than naive)
    assert all(optimized <= original for optimized, original in points)
    # average savings in the paper's ballpark
    assert 0.20 <= average <= 0.60
