"""Ablation: FDD field-ordering impact on compiled table sizes.

The compiler orders FDD tests by a global field precedence (sw and pt
first by default).  This ablation compiles every case study under
several orders and reports the resulting rule counts -- quantifying a
design choice of the compiler substrate (variable order is the classic
BDD lever).
"""

import pytest

from repro.apps import (
    authentication_app,
    bandwidth_cap_app,
    firewall_app,
    ids_app,
    learning_switch_app,
)
from repro.netkat.compiler import compile_policy
from repro.netkat.fdd import FDDBuilder, FieldOrder

ORDERS = {
    "sw,pt first (default)": ("sw", "pt"),
    "pt,sw first": ("pt", "sw"),
    "dst before locations": ("ip_dst", "sw", "pt"),
}

APPS = [
    ("firewall", firewall_app),
    ("learning", learning_switch_app),
    ("authentication", authentication_app),
    ("bandwidth-cap", lambda: bandwidth_cap_app(6)),
    ("ids", ids_app),
]


def total_rules_under_order(app, precedence):
    builder = FDDBuilder(FieldOrder(precedence))
    total = 0
    for state in app.compiled.states:
        config = compile_policy(
            app.nes.configuration_policy(state), app.topology, builder=builder
        )
        total += config.rule_count()
    return total


def sweep():
    rows = []
    for name, make in APPS:
        app = make()
        counts = {
            label: total_rules_under_order(app, precedence)
            for label, precedence in ORDERS.items()
        }
        rows.append((name, counts))
    return rows


def test_ablation_fdd_order(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    labels = list(ORDERS)
    print("\nAblation -- compiled rules under different FDD field orders:")
    print("  " + f"{'app':>15s}  " + "  ".join(f"{l:>22s}" for l in labels))
    for name, counts in rows:
        print(
            "  "
            + f"{name:>15s}  "
            + "  ".join(f"{counts[l]:>22d}" for l in labels)
        )

    for name, counts in rows:
        values = list(counts.values())
        assert all(v > 0 for v in values), name
        # Orders may differ, but none should explode catastrophically
        # on these small programs (sanity envelope).
        assert max(values) <= 4 * min(values), name
