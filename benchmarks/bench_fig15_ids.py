"""Figure 15: intrusion detection system, correct vs. incorrect.

Paper's plot: H4 pings H3, H2, H1 freely; once H1-then-H2 (the scan
signature) completes, H4->H3 traffic is cut off -- immediately for the
correct implementation, only after the delayed push for the
uncoordinated one.
"""

import pytest

from _scenarios import run_ping_schedule
from repro.apps import ids_app
from repro.baselines import UncoordinatedLogic
from repro.network import CorrectLogic

SCHEDULE = [
    ("H4", "H3", 0.5),   # benign contact, allowed
    ("H4", "H2", 1.0),   # H2 before H1: not the signature
    ("H4", "H1", 1.5),   # scan step 1
    ("H4", "H3", 2.0),   # still allowed (signature incomplete)
    ("H4", "H2", 2.5),   # scan step 2 -- signature complete
    ("H4", "H3", 3.0),   # correct: blocked immediately
    ("H4", "H3", 3.5),
    ("H4", "H3", 8.0),   # uncoordinated is blocked by now too
]


def run_both():
    app = ids_app()
    correct = run_ping_schedule(
        app, CorrectLogic(app.compiled), SCHEDULE, horizon=20.0
    )
    uncoordinated = run_ping_schedule(
        app,
        UncoordinatedLogic(app.compiled, update_delay=2.0),
        SCHEDULE,
        horizon=20.0,
    )
    return correct, uncoordinated


def show(label, outcomes):
    print(f"\nFigure 15 ({label}):")
    for o in outcomes:
        print(f"  t={o.sent_at:4.1f}s  {o.src}->{o.dst}  "
              f"{'OK' if o.succeeded else 'drop'}")


def test_fig15_ids(benchmark):
    correct, uncoordinated = benchmark.pedantic(run_both, rounds=1, iterations=1)
    show("a: correct", correct)
    show("b: uncoordinated", uncoordinated)

    by_time = {o.sent_at: o for o in correct}
    # open access before the signature completes
    assert by_time[0.5].succeeded and by_time[2.0].succeeded
    assert by_time[1.0].succeeded and by_time[1.5].succeeded
    # the moment the scan completes, H3 is cut off
    assert by_time[2.5].succeeded
    assert not by_time[3.0].succeeded
    assert not by_time[3.5].succeeded

    # uncoordinated: H4->H3 remains open briefly after the scan
    u_by_time = {o.sent_at: o for o in uncoordinated}
    assert u_by_time[3.0].succeeded or u_by_time[3.5].succeeded
    assert not u_by_time[8.0].succeeded  # eventually blocked
