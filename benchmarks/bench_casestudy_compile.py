"""The in-text section 5.1 table: per-application compile time, total
rule count, and rule count after the section 5.3 optimization.

Paper's numbers (absolute values are artifact-specific; the orderings
and the ~1/3 reduction are the reproducible shape):

    app            compile   rules   optimized
    firewall       0.013 s      18       16
    learning       0.015 s      43       27
    authentication 0.017 s      72       46
    bandwidth cap  0.023 s     158      101
    IDS            0.021 s     152      133
"""

import time

import pytest

from repro.apps import (
    authentication_app,
    bandwidth_cap_app,
    firewall_app,
    ids_app,
    learning_switch_app,
)
from repro.optimize.sharing import optimize_compiled_nes

APPS = [
    ("firewall", firewall_app),
    ("learning", learning_switch_app),
    ("authentication", authentication_app),
    ("bandwidth-cap", lambda: bandwidth_cap_app(10)),
    ("ids", ids_app),
]


def compile_all():
    rows = []
    for name, make in APPS:
        start = time.perf_counter()
        app = make()
        compiled = app.compiled  # program -> ETS -> NES -> tables
        elapsed = time.perf_counter() - start
        optimization = optimize_compiled_nes(compiled)
        rows.append(
            (
                name,
                elapsed,
                compiled.total_rule_count(),
                compiled.total_rule_count()
                - (optimization.original - optimization.optimized),
            )
        )
    return rows


def test_casestudy_compile_table(benchmark):
    rows = benchmark.pedantic(compile_all, rounds=1, iterations=1)

    print("\nSection 5.1 table -- compile time and rule counts:")
    print(f"  {'app':>15s}  {'compile (ms)':>12s}  {'rules':>6s}  {'optimized':>9s}")
    for name, elapsed, total, optimized in rows:
        print(f"  {name:>15s}  {elapsed * 1000:>12.1f}  {total:>6d}  {optimized:>9d}")

    by_name = {name: (elapsed, total, optimized) for name, elapsed, total, optimized in rows}
    # Compile times are interactive (paper: tens of milliseconds).
    assert all(elapsed < 2.0 for _, elapsed, _, _ in rows)
    # Rule-count ordering matches the paper's.
    assert by_name["firewall"][1] < by_name["learning"][1]
    assert by_name["learning"][1] < by_name["authentication"][1]
    assert by_name["authentication"][1] < by_name["ids"][1]
    assert by_name["ids"][1] < by_name["bandwidth-cap"][1]
    # Optimization strictly reduces every app's rule count.
    assert all(optimized < total for _, _, total, optimized in rows)
