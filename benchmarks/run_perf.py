"""Compiler-perf tracker: times the hot-path suite, writes a JSON record.

Usage::

    PYTHONPATH=src python -m benchmarks.run_perf [--quick] \
        [--backend serial|thread] [--out PATH]

Runs each benchmark ``rounds`` times (3 with ``--quick``, 7 otherwise),
records the per-bench median wall-clock seconds plus per-stage
(ets/nes/compile, with the ets symbolic-vs-instantiate substage split)
pipeline timings for the ids, cap-20, and cap-24 apps, and
writes ``BENCH_compiler_perf.json`` at the repository root.  The
``cap24_update_latency`` bench times an incremental
:meth:`repro.pipeline.Pipeline.update` (one initial-state component
delta) against a warm base pipeline; compare it with the cold
``cap24_full_compile`` median to read off the incremental speedup.
``cap24_service_warm_request`` times one warm ``POST /compile``
round-trip against an in-process compilation daemon
(:mod:`repro.service`) — the HTTP + wire overhead a controller pays
over the raw memo hit.
``--backend`` selects the pipeline executor for the full-app compile
benches (the outputs are byte-identical; only the timing changes).  The file is
checked in so the perf trajectory is visible PR over PR; re-run this
after touching the compiler, the FDD algebra, or the event-structure
engine, and commit the refreshed numbers.

The benches mirror ``bench_compiler_perf.py`` (FDD construction/union,
full app compile, NES conversion, trace checking, trie heuristic) plus
the scaling cases from ``bench_scale_events.py`` (deep bandwidth-cap
chains, wide multi-switch locality) that the bitset engine unlocked.

The ``sim_benches`` section is the streaming events/sec lane: a
100k-frame ring stream under the default :class:`repro.SimOptions`
(``sim_events_per_sec_ring``) and under the retained record-identity
reference path (``sim_events_per_sec_ring_reference``, same scenario,
fewer rounds) -- their ratio is the streaming speedup -- plus a
bandwidth-cap stream and the Definition 6 checker throughput on a warm
firewall trace.  These run in ``--quick`` mode too.

``obs_overhead_noop`` pins the uninstalled cost of the
:mod:`repro.obs` instrumentation hooks (span / counter / histogram
sites with no registry or tracer installed): one module-global read and
an early return per site, so its median must stay flat as more of the
codebase is instrumented.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import statistics
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps import bandwidth_cap_app, firewall_app, ids_app, ring_app
from repro.apps.base import HOSTS
from repro.consistency.checker import NESChecker
from repro.events.ets_to_nes import nes_of_ets
from repro.events.locality import (
    is_locally_determined,
    minimally_inconsistent_sets,
)
from repro.netkat.fdd import FDDBuilder
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.optimize.trie import build_trie, heuristic_order, trie_rule_count
from repro.pipeline import BACKENDS, CompileOptions, Delta, Pipeline
from repro.stateful.ets import build_ets

from .bench_compiler_perf import random_link_free_policy
from .bench_scale_events import wide_structure

def _pipeline_of(app, options: CompileOptions) -> Pipeline:
    return Pipeline(app.program, app.topology, app.initial_state, options)


# Every bench takes the run's CompileOptions (the executor backend for
# the full-app compile benches; ignored by the pure FDD/NES/trie ones)
# so callers pick the configuration explicitly instead of mutating
# module state.
def _bench_fdd_compile(options: CompileOptions) -> None:
    policy = random_link_free_policy(seed=7)
    FDDBuilder().of_policy(policy)


def _bench_fdd_union(options: CompileOptions) -> None:
    p = random_link_free_policy(seed=1, branches=16)
    q = random_link_free_policy(seed=2, branches=16)
    b = FDDBuilder()
    b.union(b.of_policy(p), b.of_policy(q))


def _bench_full_app_compile_ids(options: CompileOptions) -> None:
    _pipeline_of(ids_app(), options).compiled.total_rule_count()


def _bench_cap_chain_nes_conversion(options: CompileOptions) -> None:
    nes_of_ets(bandwidth_cap_app(20).ets)


def _bench_cap20_full_compile(options: CompileOptions) -> None:
    _pipeline_of(bandwidth_cap_app(20), options).compiled.total_rule_count()


def _bench_cap24_full_compile(options: CompileOptions) -> None:
    _pipeline_of(bandwidth_cap_app(24), options).compiled.total_rule_count()


# Warm base pipelines for the update-latency bench, keyed by app name
# and built on the harness's warm-up round, so the timed rounds pay only
# ``Pipeline.update`` itself -- the incremental recompile latency this
# bench tracks against the cold ``cap24_full_compile`` median.
_UPDATE_BASES: Dict[str, Pipeline] = {}


def _bench_cap24_update_latency(options: CompileOptions) -> None:
    base = _UPDATE_BASES.get("cap24")
    if base is None or base.options is not options:
        base = _pipeline_of(bandwidth_cap_app(24), options)
        base.compiled
        _UPDATE_BASES["cap24"] = base
    base.update(Delta(set_state=((0, 1),))).compiled


# A lazy module-level daemon for the warm-request bench, started (and
# warmed with one cold cap-24 compile) on the harness's warm-up round so
# the timed rounds pay the full HTTP round-trip of a warm request —
# client-side program serialization, the wire, server-side parse +
# artifact-key computation, the pipeline-memo hit, and the table
# serialization back — but never a compile.  The server thread is a
# daemon; process exit reaps it.
_SERVICE: Dict[str, object] = {}


def _bench_cap24_service_warm_request(options: CompileOptions) -> None:
    client = _SERVICE.get("client")
    if client is None:
        import threading

        from repro.service import ServiceClient, create_server

        server = create_server()
        threading.Thread(
            target=server.serve_forever, name="bench-service", daemon=True
        ).start()
        client = ServiceClient(server.base_url)
        _SERVICE["server"] = server
        _SERVICE["client"] = client
        _SERVICE["app"] = bandwidth_cap_app(24)
    app = _SERVICE["app"]
    client.compile(app.program, app.topology, app.initial_state)


# ETS-stage-only cases at depths the per-state walks made painful: the
# symbolic all-states engine keeps construction near-linear in the chain.
def _bench_cap28_ets_stage(options: CompileOptions) -> None:
    app = bandwidth_cap_app(28)
    build_ets(app.program, app.initial_state)


def _bench_cap32_ets_stage(options: CompileOptions) -> None:
    app = bandwidth_cap_app(32)
    build_ets(app.program, app.initial_state)


def _bench_wide_locality(options: CompileOptions) -> None:
    nes = wide_structure(8, 2)
    minimally_inconsistent_sets(nes.structure)
    is_locally_determined(nes)


def _bench_trace_checker(options: CompileOptions) -> None:
    app = firewall_app()
    rt = app.runtime(seed=0)
    for i in range(6):
        rt.inject("H1", {"ip_dst": 4, "ip_src": 1, "ident": i})
        rt.run_until_quiescent()
        rt.inject("H4", {"ip_dst": 1, "ip_src": 4, "ident": 100 + i})
        rt.run_until_quiescent()
    trace = rt.network_trace()
    NESChecker(app.nes, app.topology).check(trace)


# The zero-overhead-uninstalled pin for repro.obs: hammer the three
# hot-path instrumentation entry points (span enter/exit, counter inc,
# histogram observe) with no registry or tracer installed.  Each site
# must cost one module-global read and an early return, so this median
# must not move when instrumentation is added to the codebase — compare
# it PR over PR like any other lane.
OBS_NOOP_ITERATIONS = 200_000


def _bench_obs_overhead_noop(options: CompileOptions) -> None:
    assert obs_metrics.active() is None and obs_trace.active() is None
    span = obs_trace.span
    inc = obs_metrics.inc
    observe = obs_metrics.observe
    for _ in range(OBS_NOOP_ITERATIONS):
        with span("bench.noop"):
            pass
        inc("bench_noop_total")
        observe("bench_noop_seconds", 0.0)


def _bench_trie_heuristic(options: CompileOptions) -> None:
    import random

    rng = random.Random(3)
    pool = [f"r{i}" for i in range(20)]
    configs = [
        frozenset(r for r in pool if rng.random() < 0.3) for _ in range(64)
    ]
    trie_rule_count(build_trie(heuristic_order(configs)))


# -- simulator events/sec lane ------------------------------------------------
#
# Unlike the compile benches above, these report a throughput (processed
# events per second of simulated traffic).  Each bench builds its
# scenario outside the timed region and times only ``net.run()``,
# returning ``(events_processed, elapsed_seconds)``; the harness folds
# rounds into a median and derives events/sec.  ``gc.collect()`` runs
# between rounds so one round's garbage does not tax the next.


def _stream_net(app, sim_options, header, src, count, spacing):
    from repro.network import CorrectLogic, FrameBatch, SimNetwork

    logic = CorrectLogic(app.compiled, options=sim_options)
    net = SimNetwork(app.topology, logic, seed=7, options=sim_options)
    net.inject_stream(
        src,
        FrameBatch(
            header,
            count,
            payload_bytes=64,
            flow=("bulk", src),
            spacing=spacing,
        ),
    )
    return net


def _timed_run(net) -> Tuple[int, float]:
    start = time.perf_counter()
    net.run()
    return net.sim.events_processed, time.perf_counter() - start


RING_STREAM_FRAMES = 100_000


def _sim_ring(sim_options) -> Tuple[int, float]:
    header = {
        "ip_src": HOSTS["H1"],
        "ip_dst": HOSTS["H2"],
        "kind": 0,
        "ident": 0,
    }
    net = _stream_net(
        ring_app(2), sim_options, header, "H1", RING_STREAM_FRAMES, 1e-6
    )
    return _timed_run(net)


def _bench_sim_events_ring() -> Tuple[int, float]:
    from repro.sim_options import SimOptions

    return _sim_ring(SimOptions())


def _bench_sim_events_ring_reference() -> Tuple[int, float]:
    # The retained record-identity reference path on the identical
    # scenario: the recorded ratio against ``sim_events_per_sec_ring``
    # is the streaming speedup the knobs buy.
    from repro.sim_options import REFERENCE_SIM_OPTIONS

    return _sim_ring(REFERENCE_SIM_OPTIONS)


def _bench_sim_events_cap() -> Tuple[int, float]:
    from repro.sim_options import SimOptions

    header = {
        "ip_src": HOSTS["H1"],
        "ip_dst": HOSTS["H4"],
        "kind": 0,
        "ident": 0,
    }
    net = _stream_net(
        bandwidth_cap_app(10), SimOptions(), header, "H1", 20_000, 1e-6
    )
    return _timed_run(net)


# The firewall trace is a pure function of the seeded scenario; build it
# once and hand each round a fresh checker (the memoized configurations
# are what a warm controller would hold, the checker state is not).
_TRACE_CACHE: Dict[str, object] = {}


def _bench_trace_check_throughput() -> Tuple[int, float]:
    from repro.sim_options import SimOptions

    trace = _TRACE_CACHE.get("firewall")
    if trace is None:
        app = firewall_app()
        rt = app.runtime(seed=0)
        for i in range(6):
            rt.inject("H1", {"ip_dst": 4, "ip_src": 1, "ident": i})
            rt.run_until_quiescent()
            rt.inject("H4", {"ip_dst": 1, "ip_src": 4, "ident": 100 + i})
            rt.run_until_quiescent()
        trace = rt.network_trace()
        _TRACE_CACHE["firewall"] = trace
        _TRACE_CACHE["app"] = app
    app = _TRACE_CACHE["app"]
    checker = NESChecker(app.nes, app.topology, options=SimOptions())
    start = time.perf_counter()
    report = checker.check(trace)
    elapsed = time.perf_counter() - start
    assert report
    return len(trace.packets), elapsed


# (name, bench, max_rounds): the reference lane is ~10x slower on the
# same scenario, so it caps its rounds instead of shrinking the stream
# (the ratio must be read at matched scale).
SIM_BENCHES: Tuple[Tuple[str, Callable[[], Tuple[int, float]], Optional[int]], ...] = (
    ("sim_events_per_sec_ring", _bench_sim_events_ring, None),
    ("sim_events_per_sec_ring_reference", _bench_sim_events_ring_reference, 3),
    ("sim_events_per_sec_cap", _bench_sim_events_cap, None),
    ("trace_check_throughput", _bench_trace_check_throughput, None),
)


def run_sim(rounds: int) -> Dict[str, Dict[str, float]]:
    results: Dict[str, Dict[str, float]] = {}
    for name, fn, max_rounds in SIM_BENCHES:
        n_rounds = rounds if max_rounds is None else min(rounds, max_rounds)
        fn()  # warm-up round (app compile caches, interned structures)
        times: List[float] = []
        units = 0
        for _ in range(n_rounds):
            gc.collect()
            units, elapsed = fn()
            times.append(elapsed)
        median = statistics.median(times)
        results[name] = {
            "median_s": round(median, 6),
            "min_s": round(min(times), 6),
            "units": units,
            "events_per_sec": round(units / median, 1),
            "rounds": n_rounds,
        }
        print(
            f"{name:32s} median {median:.6f}s  "
            f"{results[name]['events_per_sec']:>12,.0f} ev/s"
        )
    return results


BENCHES: Tuple[Tuple[str, Callable[[CompileOptions], None]], ...] = (
    ("fdd_compile", _bench_fdd_compile),
    ("fdd_union", _bench_fdd_union),
    ("full_app_compile_ids", _bench_full_app_compile_ids),
    ("cap_chain_nes_conversion_20", _bench_cap_chain_nes_conversion),
    ("cap20_full_compile", _bench_cap20_full_compile),
    ("cap24_full_compile", _bench_cap24_full_compile),
    ("cap24_update_latency", _bench_cap24_update_latency),
    ("cap24_service_warm_request", _bench_cap24_service_warm_request),
    ("cap28_ets_stage", _bench_cap28_ets_stage),
    ("cap32_ets_stage", _bench_cap32_ets_stage),
    ("wide_locality_8x2", _bench_wide_locality),
    ("trace_checker_firewall", _bench_trace_checker),
    ("trie_heuristic_64x20", _bench_trie_heuristic),
    ("obs_overhead_noop", _bench_obs_overhead_noop),
)


def run(
    rounds: int, options: Optional[CompileOptions] = None
) -> Dict[str, Dict[str, float]]:
    options = options if options is not None else CompileOptions()
    results: Dict[str, Dict[str, float]] = {}
    for name, fn in BENCHES:
        fn(options)  # warm-up round (imports, module-level caches)
        times: List[float] = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn(options)
            times.append(time.perf_counter() - start)
        results[name] = {
            "median_s": round(statistics.median(times), 6),
            "min_s": round(min(times), 6),
            "rounds": rounds,
        }
        print(f"{name:32s} median {results[name]['median_s']:.6f}s")
    return results


# Apps whose staged (ets/nes/compile) timings are recorded per stage,
# including the ets symbolic-vs-instantiate substage split.
PIPELINE_STAGE_APPS: Tuple[Tuple[str, Callable[[], object]], ...] = (
    ("ids", ids_app),
    ("cap20", lambda: bandwidth_cap_app(20)),
    ("cap24", lambda: bandwidth_cap_app(24)),
)


def run_pipeline_stages(
    rounds: int, options: Optional[CompileOptions] = None
) -> Dict[str, Dict[str, float]]:
    """Median per-stage pipeline wall-clock times, per app."""
    options = options if options is not None else CompileOptions()
    out: Dict[str, Dict[str, float]] = {}
    for name, make in PIPELINE_STAGE_APPS:
        samples: Dict[str, List[float]] = {}
        _pipeline_of(make(), options).compiled  # warm-up round, like run()
        for _ in range(rounds):
            pipeline = _pipeline_of(make(), options)
            pipeline.compiled
            report = pipeline.report()
            for stage, seconds in report.stage_seconds + report.substages:
                samples.setdefault(stage, []).append(seconds)
        out[name] = {
            f"{stage}_median_s": round(statistics.median(times), 6)
            for stage, times in samples.items()
            if times
        }
        summary = "  ".join(f"{k} {v:.6f}s" for k, v in out[name].items())
        print(f"pipeline[{name:6s}] {summary}")
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="3 rounds per bench instead of 7"
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="serial",
        help="pipeline executor for the full-app compile benches",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_compiler_perf.json"),
        help="output JSON path (default: repo root)",
    )
    args = parser.parse_args()
    options = CompileOptions(backend=args.backend)
    rounds = 3 if args.quick else 7
    results = run(rounds, options)
    stages = run_pipeline_stages(rounds, options)
    sim = run_sim(rounds)
    payload = {
        "suite": "compiler_perf",
        "python": platform.python_version(),
        "rounds": rounds,
        "backend": args.backend,
        "benches": results,
        "pipeline_stages": stages,
        "sim_benches": sim,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
