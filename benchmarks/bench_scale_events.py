"""Scaling benchmarks for the bitset event-structure engine.

Two stress axes the brute-force engine could not handle:

- *deep chains*: ``bandwidth_cap_app(depth)`` renames one syntactic
  event ``depth+1`` times, so the structure has that many events and a
  linear cover family.  The old subset enumeration was 2^n here (10s at
  depth 20, intractable past ~24); the transversal engine is linear.
- *wide multi-switch structures*: ``k`` switches with ``m`` exclusive
  events each (covers = one event per switch), giving ``m^k`` maximal
  covers and ``k * C(m, 2)`` minimally-inconsistent pairs -- the
  Berge-enumeration-heavy regime.
"""

import pytest

from repro.apps import bandwidth_cap_app
from repro.events.event import Event
from repro.stateful.ets import build_ets
from repro.events.locality import (
    is_locally_determined,
    minimally_inconsistent_sets,
)
from repro.events.nes import NES
from repro.events.structure import EventStructure
from repro.formula import EQ, Formula, Literal
from repro.netkat.ast import ID
from repro.netkat.packet import Location

CHAIN_DEPTHS = (16, 20, 24, 28)

# Depths for the ETS-stage-only benchmark: the symbolic all-states
# engine makes construction near-linear in the chain, so deeper caps
# than the full-pipeline cases stay tractable.
ETS_STAGE_DEPTHS = (24, 28, 32)


def _event(field: str, value: int, switch: int, port: int = 1, eid: int = 0) -> Event:
    return Event(Formula((Literal(field, EQ, value),)), Location(switch, port), eid)


def wide_structure(switches: int, per_switch: int) -> NES:
    """``switches`` switches, ``per_switch`` mutually-exclusive events each.

    Covers pick exactly one event per switch, so the minimally
    inconsistent sets are the same-switch pairs (locally determined).
    """
    events = [
        _event("sig", i, sw)
        for sw in range(1, switches + 1)
        for i in range(per_switch)
    ]
    by_switch = [events[i : i + per_switch] for i in range(0, len(events), per_switch)]
    covers = [frozenset()]

    def expand(prefix, groups):
        if not groups:
            covers.append(frozenset(prefix))
            return
        for event in groups[0]:
            expand(prefix + [event], groups[1:])

    expand([], by_switch)
    structure = EventStructure(
        events,
        covers,
        [(frozenset(), e) for e in events],
    )
    return NES(structure, {frozenset(): (0,)}, {(0,): ID})


@pytest.mark.parametrize("depth", CHAIN_DEPTHS)
def test_chain_compile_scales(benchmark, depth):
    """Full pipeline (app -> ETS -> NES -> guarded tables) per chain depth."""

    def compile_chain():
        return bandwidth_cap_app(depth).compiled.total_rule_count()

    rules = benchmark(compile_chain)
    # One counting rule per chain state plus the static paths.
    assert rules > depth


@pytest.mark.parametrize("depth", ETS_STAGE_DEPTHS)
def test_chain_ets_stage_scales(benchmark, depth):
    """ETS construction alone (the symbolic partial-evaluation pass plus
    per-state instantiation), per chain depth."""
    app = bandwidth_cap_app(depth)

    def build():
        return build_ets(app.program, app.initial_state)

    ets = benchmark(build)
    # One chain state per counter value, plus the capped terminal state.
    assert len(ets.states()) == depth + 2
    assert len(ets.edges) == depth + 1


@pytest.mark.parametrize("switches,per_switch", [(6, 2), (8, 2), (5, 3)])
def test_wide_locality_scales(benchmark, switches, per_switch):
    """Transversal enumeration over m^k maximal covers."""
    nes = wide_structure(switches, per_switch)

    def check():
        nes.structure._transversal_cache.clear()
        minimal = minimally_inconsistent_sets(nes.structure)
        return is_locally_determined(nes), len(minimal)

    local, count = benchmark(check)
    assert local
    assert count == switches * per_switch * (per_switch - 1) // 2
