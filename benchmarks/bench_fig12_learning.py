"""Figure 12: learning switch -- packets sent to H1 vs. flooded to H2.

Paper's plot: with the correct implementation only the first H4->H1
packet is flooded to H2; afterwards s4 has learned H1's location.  With
uncoordinated updates, flooding continues until the delayed rule push.
"""

import pytest

from repro.apps import learning_switch_app
from repro.baselines import UncoordinatedLogic
from repro.network import (
    CorrectLogic,
    SimNetwork,
    install_ping_responders,
    send_ping,
)

N_PINGS = 9
INTERVAL = 0.5


def run(logic):
    app = learning_switch_app()
    net = SimNetwork(app.topology, logic, seed=5)
    install_ping_responders(net)
    for i in range(N_PINGS):
        send_ping(net, "H4", "H1", i + 1, 0.5 + i * INTERVAL)
    net.run(until=20.0)
    per_second: dict = {}
    for d in net.deliveries:
        if d.frame.flow[:1] != ("ping",):
            continue
        bucket = int(d.time)
        key = (bucket, d.host)
        per_second[key] = per_second.get(key, 0) + 1
    to_h1 = sum(v for (s, h), v in per_second.items() if h == "H1")
    to_h2 = sum(v for (s, h), v in per_second.items() if h == "H2")
    return per_second, to_h1, to_h2


def run_both():
    app = learning_switch_app()
    return (
        run(CorrectLogic(app.compiled)),
        run(UncoordinatedLogic(app.compiled, update_delay=2.0)),
    )


def show(label, per_second):
    print(f"\nFigure 12 ({label}) -- packets delivered per second:")
    buckets = sorted({s for s, _ in per_second})
    for s in buckets:
        h1 = per_second.get((s, "H1"), 0)
        h2 = per_second.get((s, "H2"), 0)
        print(f"  t={s:2d}s  to H1: {h1}  to H2: {h2}")


def test_fig12_learning_switch(benchmark):
    (correct, c_h1, c_h2), (unc, u_h1, u_h2) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    show("a: correct", correct)
    show("b: uncoordinated", unc)

    # Correct: every request reaches H1; exactly the first is flooded.
    assert c_h1 == N_PINGS
    assert c_h2 == 1
    # Uncoordinated: H2 keeps receiving flooded copies during the window.
    assert u_h2 > 1
    assert u_h2 <= N_PINGS
