"""Compiler performance microbenchmarks (timed, multi-round).

Unlike the figure benches (single-shot scenario reproductions), these
use pytest-benchmark's statistical timing to track the toolchain's
hot paths: FDD construction, full app compilation, NES conversion, and
the trace checker.  They guard against performance regressions in the
substrate the reproductions run on.
"""

import random

import pytest

from repro.apps import bandwidth_cap_app, firewall_app, ids_app
from repro.consistency.checker import NESChecker
from repro.events.ets_to_nes import nes_of_ets
from repro.netkat.ast import assign, filter_, seq, test as field_test, union
from repro.netkat.fdd import FDDBuilder
from repro.optimize.trie import heuristic_order, build_trie, trie_rule_count
from repro.stateful.ets import build_ets


def random_link_free_policy(seed: int, branches: int = 24):
    rng = random.Random(seed)
    parts = []
    for _ in range(branches):
        tests = [
            filter_(field_test(f, rng.randrange(4)))
            for f in rng.sample(["a", "b", "c", "d"], k=rng.randint(1, 3))
        ]
        mods = [
            assign(f, rng.randrange(4))
            for f in rng.sample(["a", "b", "c", "d"], k=rng.randint(1, 2))
        ]
        parts.append(seq(*tests, *mods))
    return union(*parts)


def test_fdd_compilation_speed(benchmark):
    policy = random_link_free_policy(seed=7)

    def compile_once():
        return FDDBuilder().of_policy(policy)

    d = benchmark(compile_once)
    assert d is not None


def test_fdd_union_speed(benchmark):
    p = random_link_free_policy(seed=1, branches=16)
    q = random_link_free_policy(seed=2, branches=16)

    def union_fdds():
        b = FDDBuilder()
        return b.union(b.of_policy(p), b.of_policy(q))

    assert benchmark(union_fdds) is not None


def test_full_app_compile_speed(benchmark):
    """Program -> ETS -> NES -> guarded tables for the IDS case study."""

    def pipeline():
        app = ids_app()
        return app.compiled.total_rule_count()

    assert benchmark(pipeline) > 0


def test_cap_chain_nes_conversion_speed(benchmark):
    """The renaming-heavy conversion: a 20-deep event chain."""
    app = bandwidth_cap_app(20)
    ets = app.ets

    def convert():
        return nes_of_ets(ets)

    nes = benchmark(convert)
    assert len(nes.events) == 21


def test_trace_checker_speed(benchmark):
    """Definition 6 checking of a moderately long runtime trace."""
    app = firewall_app()
    rt = app.runtime(seed=0)
    for i in range(6):
        rt.inject("H1", {"ip_dst": 4, "ip_src": 1, "ident": i})
        rt.run_until_quiescent()
        rt.inject("H4", {"ip_dst": 1, "ip_src": 4, "ident": 100 + i})
        rt.run_until_quiescent()
    trace = rt.network_trace()
    checker = NESChecker(app.nes, app.topology)

    report = benchmark(checker.check, trace)
    assert report.correct


def test_trie_heuristic_speed(benchmark):
    rng = random.Random(3)
    pool = [f"r{i}" for i in range(20)]
    configs = [
        frozenset(r for r in pool if rng.random() < 0.3) for _ in range(64)
    ]

    def optimize():
        return trie_rule_count(build_trie(heuristic_order(configs)))

    assert benchmark(optimize) > 0
