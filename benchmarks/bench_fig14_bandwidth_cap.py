"""Figure 14: bandwidth cap (n=10), correct vs. incorrect.

Paper's result: 22 pings sent; the correct implementation completes
exactly 10; the uncoordinated one completed 15.
"""

import pytest

from _scenarios import run_ping_schedule
from repro.apps import bandwidth_cap_app
from repro.baselines import UncoordinatedLogic
from repro.network import CorrectLogic

CAP = 10
TOTAL = 22
SCHEDULE = [("H1", "H4", 0.5 + i * 0.5) for i in range(TOTAL)]


def run_both():
    app = bandwidth_cap_app(CAP)
    correct = run_ping_schedule(
        app, CorrectLogic(app.compiled), SCHEDULE, horizon=40.0, seed=3
    )
    uncoordinated = run_ping_schedule(
        app,
        UncoordinatedLogic(app.compiled, update_delay=2.0),
        SCHEDULE,
        horizon=40.0,
        seed=3,
    )
    return correct, uncoordinated


def test_fig14_bandwidth_cap(benchmark):
    correct, uncoordinated = benchmark.pedantic(run_both, rounds=1, iterations=1)
    c_ok = sum(1 for o in correct if o.succeeded)
    u_ok = sum(1 for o in uncoordinated if o.succeeded)

    print(f"\nFigure 14 -- bandwidth cap n={CAP}, {TOTAL} pings sent:")
    print(f"  correct:        {c_ok} pings succeeded  (paper: 10)")
    print(f"  uncoordinated:  {u_ok} pings succeeded  (paper: 15)")
    for label, outcomes in [("a: correct", correct), ("b: uncoordinated", uncoordinated)]:
        marks = "".join("#" if o.succeeded else "." for o in outcomes)
        print(f"  {label:18s} [{marks}]")

    # The correct implementation honors the cap exactly.
    assert c_ok == CAP
    # The uncoordinated one overshoots while the pushes are in flight.
    assert u_ok > CAP
