"""Shared scenario drivers for the figure-regeneration benchmarks.

Each ``run_*`` function reproduces one experimental setup from section 5
of the paper and returns the measured series; the ``bench_*`` modules
wrap them in pytest-benchmark harnesses, print the series in the shape
the paper reports, and assert the qualitative claims.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.apps import (
    SIGNAL_FIELD,
    authentication_app,
    bandwidth_cap_app,
    firewall_app,
    ids_app,
    learning_switch_app,
    ring_app,
)
from repro.apps.base import App
from repro.baselines import ReferenceLogic, UncoordinatedLogic
from repro.netkat.packet import Packet
from repro.network import (
    CorrectLogic,
    Frame,
    LinkParams,
    SimNetwork,
    goodput,
    install_ping_responders,
    ping_outcomes,
    send_bulk,
    send_ping,
)
from repro.network.traffic import PingOutcome

# A 1 Gbit/s link makes the software switch the bottleneck, as in the
# paper's modified OpenFlow reference switch deployment.
FAST_LINK = LinkParams(latency=0.001, capacity=1.25e9)
SWITCH_DELAY = 1e-4  # 100 us per-packet software switching


def run_ping_schedule(
    app: App,
    logic,
    schedule: Sequence[Tuple[str, str, float]],
    horizon: float,
    seed: int = 7,
) -> List[PingOutcome]:
    """Send pings per (src, dst, time) schedule; return their outcomes."""
    net = SimNetwork(app.topology, logic, seed=seed)
    install_ping_responders(net)
    pings = []
    for ident, (src, dst, at) in enumerate(schedule, start=1):
        send_ping(net, src, dst, ident, at)
        pings.append((src, dst, ident, at))
    net.run(until=horizon)
    return ping_outcomes(net, pings)


def firewall_schedule(n_pings: int = 10, interval: float = 0.4) -> List[Tuple[str, str, float]]:
    """H1 pings H4 repeatedly (replies exercise the updated reverse path)."""
    return [("H1", "H4", 1.0 + i * interval) for i in range(n_pings)]


def run_firewall_drop_count(delay: float, seed: int) -> int:
    """One Figure 10 sample: pings dropped by the uncoordinated firewall."""
    app = firewall_app()
    logic = UncoordinatedLogic(app.compiled, update_delay=delay)
    outcomes = run_ping_schedule(
        app, logic, firewall_schedule(), horizon=30.0, seed=seed
    )
    return sum(1 for o in outcomes if not o.succeeded)


def run_firewall_correct_drop_count(seed: int) -> int:
    app = firewall_app()
    outcomes = run_ping_schedule(
        app, CorrectLogic(app.compiled), firewall_schedule(), horizon=30.0, seed=seed
    )
    return sum(1 for o in outcomes if not o.succeeded)


def run_ring_bandwidth(diameter: int, tagged: bool, packets: int = 400) -> float:
    """One Figure 16(a) sample: goodput through the ring (bytes/sec)."""
    app = ring_app(diameter)
    if tagged:
        logic = CorrectLogic(app.compiled)
    else:
        logic = ReferenceLogic(
            app.compiled.config_for_state(app.compiled.nes.initial_state)
        )
    net = SimNetwork(
        app.topology,
        logic,
        seed=5,
        default_link=FAST_LINK,
        switch_delay=SWITCH_DELAY,
    )
    send_bulk(net, "H1", "H2", packets=packets)
    net.run(until=600.0)
    return goodput(net, "H1", "H2")


def run_ring_convergence(
    diameter: int, controller_assist: bool
) -> Dict[int, float]:
    """One Figure 16(b) sample: per-switch event discovery time (s)."""
    app = ring_app(diameter)
    logic = CorrectLogic(app.compiled, controller_assist=controller_assist)
    net = SimNetwork(app.topology, logic, seed=5)
    install_ping_responders(net)
    event_time = 1.0
    signal = Frame(
        packet=Packet({"ip_src": 1, SIGNAL_FIELD: 1, "kind": 0, "ident": 0}),
        flow=("signal",),
    )
    net.inject("H1", signal, at=event_time)
    # Background ping traffic spreads digests around the ring.
    for i in range(120):
        send_ping(net, "H1", "H2", 100 + i, at=0.5 + i * 0.1)
    net.run(until=30.0)
    return {
        switch: learned - event_time
        for (switch, _event), learned in net.event_learned_at.items()
        if learned >= event_time
    }
