"""Figure 16(b): event discovery time across ring diameters, with and
without controller assistance.

Paper's result: max/avg time for switches to learn about the event
grows with the diameter when only packet digests spread the news, and
drops substantially when the controller broadcasts its view.
"""

import pytest

from _scenarios import run_ring_convergence

DIAMETERS = [3, 4, 5, 6, 7, 8]


def sweep():
    rows = []
    for diameter in DIAMETERS:
        gossip = run_ring_convergence(diameter, controller_assist=False)
        assisted = run_ring_convergence(diameter, controller_assist=True)
        rows.append((diameter, gossip, assisted))
    return rows


def stats(learned, n_switches):
    times = list(learned.values())
    if not times:
        return float("inf"), float("inf"), 0
    return max(times), sum(times) / len(times), len(times)


def test_fig16b_convergence(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nFigure 16(b) -- event discovery time (s):")
    print(f"  {'diam':>4s}  {'max':>7s}  {'avg':>7s}  {'max w/ctrl':>10s}  {'avg w/ctrl':>10s}")
    for diameter, gossip, assisted in rows:
        n = 2 * diameter
        gmax, gavg, gknown = stats(gossip, n)
        amax, aavg, aknown = stats(assisted, n)
        print(
            f"  {diameter:>4d}  {gmax:>7.3f}  {gavg:>7.3f}  "
            f"{amax:>10.3f}  {aavg:>10.3f}   "
            f"({gknown}/{n} and {aknown}/{n} switches)"
        )

    for diameter, gossip, assisted in rows:
        n = 2 * diameter
        gmax, gavg, gknown = stats(gossip, n)
        amax, aavg, aknown = stats(assisted, n)
        # every switch eventually learns, both ways
        assert gknown == n and aknown == n
        # controller assist never hurts the average
        assert aavg <= gavg + 1e-9

    # discovery time grows with diameter under gossip (endpoints)
    first_max = stats(rows[0][1], 2 * rows[0][0])[0]
    last_max = stats(rows[-1][1], 2 * rows[-1][0])[0]
    assert last_max >= first_max
