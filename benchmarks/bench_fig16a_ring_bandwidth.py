"""Figure 16(a): tag/state overhead in bandwidth across ring diameters.

Paper's result: the event-driven runtime's throughput stays within ~6%
of the unmodified reference switch at every diameter (2..8); the two
curves nearly coincide.
"""

import pytest

from _scenarios import run_ring_bandwidth

DIAMETERS = [2, 3, 4, 5, 6, 7, 8]


def sweep():
    rows = []
    for diameter in DIAMETERS:
        reference = run_ring_bandwidth(diameter, tagged=False)
        tagged = run_ring_bandwidth(diameter, tagged=True)
        rows.append((diameter, reference, tagged))
    return rows


def test_fig16a_ring_bandwidth(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nFigure 16(a) -- goodput vs ring diameter:")
    print(f"  {'diam':>4s}  {'reference MB/s':>14s}  {'tagged MB/s':>12s}  {'overhead':>8s}")
    overheads = []
    for diameter, reference, tagged in rows:
        overhead = (1 - tagged / reference) * 100
        overheads.append(overhead)
        print(
            f"  {diameter:>4d}  {reference / 1e6:>14.2f}  "
            f"{tagged / 1e6:>12.2f}  {overhead:>7.1f}%"
        )
    print(f"  average overhead: {sum(overheads) / len(overheads):.1f}% (paper: ~6%)")

    for diameter, reference, tagged in rows:
        assert tagged > 0 and reference > 0
        # tagging costs something but stays within a ~10% envelope
        assert tagged <= reference
        assert tagged >= 0.90 * reference
    assert sum(overheads) / len(overheads) <= 8.0
